//! RVR — the structured rendezvous-routing baseline.
//!
//! A Scribe/Bayeux-equivalent built on the same substrate as Vitis (Newscast
//! peer sampling, T-Man-maintained ring, Symphony small-world links) but
//! *oblivious to subscriptions*: all non-ring routing-table entries are
//! small-world links and there are no friend links. Every subscriber of a
//! topic periodically routes a join request toward `hash(topic)`; the nodes
//! on the path install per-topic tree soft state (parent toward the
//! rendezvous, children back toward subscribers). Events climb the
//! publisher's path to the rendezvous and flood down the whole tree — every
//! non-subscriber on a path is pure relay traffic, which is exactly the
//! overhead Vitis's clustering removes.

use std::collections::HashSet;
use std::sync::Arc;
use vitis::monitor::{EventId, HopPath, Monitor};
use vitis::relay::RelayTable;
use vitis::smallmap::SmallMap;
use vitis::topic::{Subs, TopicId};
use vitis_overlay::entry::{merge_dedup, Entry};
use vitis_overlay::id::Id;
use vitis_overlay::peer_sampling::{Newscast, PeerSampling};
use vitis_overlay::routing::next_hop;
use vitis_overlay::rt::{build_exchange_buffer, select_neighbors, HybridRt, RtParams};
use vitis_sim::antientropy::{AeConfig, AntiEntropy};
use vitis_sim::event::NodeIdx;
use vitis_sim::prelude::{Context, MsgTag, ParallelProtocol, Protocol, StopReason};

/// RVR node configuration.
#[derive(Clone, Debug)]
pub struct RvrConfig {
    /// Fixed node degree (routing-table size). All slots beyond the two
    /// ring links hold small-world links.
    pub rt_size: usize,
    /// Estimated network size for the harmonic draw.
    pub est_n: usize,
    /// Failure-detection age threshold in rounds.
    pub age_threshold: u16,
    /// Tree soft-state TTL in rounds.
    pub tree_ttl: u16,
    /// Peer-sampling view capacity.
    pub sampling_view: usize,
    /// Safety cap on lookup path length.
    pub max_lookup_hops: u32,
}

impl Default for RvrConfig {
    fn default() -> Self {
        RvrConfig {
            rt_size: 15,
            est_n: 10_000,
            age_threshold: 5,
            tree_ttl: 3,
            sampling_view: 15,
            max_lookup_hops: 128,
        }
    }
}

/// RVR wire protocol.
#[derive(Clone, Debug)]
pub enum RvrMsg {
    /// Peer-sampling exchange request.
    PsReq(Vec<Entry<Subs>>),
    /// Peer-sampling exchange reply.
    PsResp(Vec<Entry<Subs>>),
    /// T-Man routing-table exchange request.
    RtReq(Vec<Entry<Subs>>),
    /// T-Man routing-table exchange reply.
    RtResp(Vec<Entry<Subs>>),
    /// Liveness heartbeat to routing-table neighbors, carrying the
    /// sender's ring id for notify-style ring repair.
    Heartbeat(Id, Subs),
    /// A subscriber's (or forwarder's) join step toward the rendezvous,
    /// installing tree soft state (Scribe JOIN).
    Join {
        /// The topic whose tree is being joined/refreshed.
        topic: TopicId,
        /// Hops taken so far.
        hops: u32,
    },
    /// Data-plane event notification travelling the tree.
    Notif {
        /// The event.
        event: EventId,
        /// Its topic.
        topic: TopicId,
        /// Hops from the publisher.
        hops: u32,
        /// Causal provenance (forensic metadata only — excluded from
        /// wire-size accounting, never consulted for routing).
        path: HopPath,
    },
    /// Harness stimulus: publish `event` on `topic` from this node.
    PublishCmd {
        /// Pre-registered event id.
        event: EventId,
        /// Topic to publish on.
        topic: TopicId,
    },
    /// Anti-entropy digest (IHAVE): `(event id, topic)` pairs the sender
    /// holds in its repair cache. Only sent when repair is enabled.
    AeDigest(Arc<Vec<(u64, u32)>>),
    /// Anti-entropy pull request (IWANT): missing event ids.
    AeWant(Vec<u64>),
    /// Anti-entropy recovery push answering an [`RvrMsg::AeWant`].
    AePush {
        /// The recovered event.
        event: EventId,
        /// Its topic.
        topic: TopicId,
        /// Hops from the publisher, counting the repair hop.
        hops: u32,
        /// Causal provenance (forensic metadata only).
        path: HopPath,
    },
}

/// An RVR peer.
pub struct RvrNode {
    cfg: Arc<RvrConfig>,
    monitor: Monitor,
    addr: NodeIdx,
    id: Id,
    subs: Subs,
    sampling: Newscast<Subs>,
    rt: HybridRt<Subs>,
    bootstrap: Vec<Entry<Subs>>,
    /// Per-topic multicast-tree soft state (same structure as Vitis relay
    /// paths: upstream = parent toward rendezvous, downstream = children).
    tree: RelayTable,
    seen: HashSet<EventId>,
    /// Neighbor subscription cache (from heartbeats) — used only for
    /// delivery bookkeeping, never for neighbor selection.
    nbr_subs: SmallMap<NodeIdx, Subs>,
    /// Anti-entropy repair layer; inert (no sends, no RNG draws) unless
    /// explicitly enabled via [`RvrNode::with_repair`]. Caches `(hops,
    /// path)` alongside the event/topic ids.
    ae: AntiEntropy<(u32, HopPath)>,
    /// Local round counter driving the repair cache TTL and digest cadence.
    round: u64,
}

impl RvrNode {
    /// Create a node with the given ring id, subscriptions and bootstrap
    /// contacts.
    pub fn new(
        id: Id,
        subs: Subs,
        cfg: Arc<RvrConfig>,
        monitor: Monitor,
        bootstrap: Vec<Entry<Subs>>,
    ) -> Self {
        let sampling = Newscast::new(cfg.sampling_view);
        RvrNode {
            cfg,
            monitor,
            addr: NodeIdx(u32::MAX),
            id,
            subs,
            sampling,
            rt: HybridRt::new(),
            bootstrap,
            tree: RelayTable::new(),
            seen: HashSet::new(),
            nbr_subs: SmallMap::new(),
            ae: AntiEntropy::new(AeConfig::default()),
            round: 0,
        }
    }

    /// Replace the anti-entropy configuration (builder style). Pass
    /// [`AeConfig::on`] to enable digest-exchange repair.
    pub fn with_repair(mut self, cfg: AeConfig) -> Self {
        self.ae = AntiEntropy::new(cfg);
        self
    }

    /// The anti-entropy repair layer (read access for tests).
    pub fn repair(&self) -> &AntiEntropy<(u32, HopPath)> {
        &self.ae
    }

    /// This node's ring identifier.
    pub fn ring_id(&self) -> Id {
        self.id
    }

    /// This node's subscriptions.
    pub fn subscriptions(&self) -> &Subs {
        &self.subs
    }

    /// The current routing table.
    pub fn routing_table(&self) -> &HybridRt<Subs> {
        &self.rt
    }

    /// The per-topic tree soft state.
    pub fn tree_table(&self) -> &RelayTable {
        &self.tree
    }

    fn self_entry(&self) -> Entry<Subs> {
        Entry::fresh(self.addr, self.id, self.subs.clone())
    }

    fn rt_params(&self) -> RtParams {
        RtParams {
            rt_size: self.cfg.rt_size,
            // Subscription-oblivious: everything beyond the ring is a
            // small-world link; no friend slots exist.
            k_sw: self.cfg.rt_size.saturating_sub(2),
            est_n: self.cfg.est_n,
        }
    }

    fn merge_and_select(&mut self, incoming: &[Entry<Subs>], ctx: &mut Context<'_, RvrMsg>) {
        let mut candidates = self.rt.to_vec();
        merge_dedup(&mut candidates, incoming);
        merge_dedup(&mut candidates, self.sampling.sample());
        // Drop descriptors past the failure-detection threshold; see the
        // same filter in VitisNode — circulating copies of dead descriptors
        // otherwise re-enter tables as zombie ring neighbors.
        candidates.retain(|e| e.age <= self.cfg.age_threshold);
        let keep_sw: Vec<NodeIdx> = self.rt.sw.iter().map(|e| e.addr).collect();
        self.rt = select_neighbors(
            self.addr,
            self.id,
            &self.rt_params(),
            candidates,
            &keep_sw,
            &[],
            |_| 0.0,
            ctx.rng,
        );
    }

    /// Notify-style ring repair: adopt an unknown heartbeat sender as a
    /// ring neighbor when it is closer than the current successor or
    /// predecessor, keeping ring edges symmetric (they then refresh each
    /// other) and lookups consistent.
    fn consider_ring_candidate(&mut self, from: NodeIdx, id: Id, subs: Subs) {
        if self.rt.contains(from) || id == self.id {
            return;
        }
        let d_cw = self.id.distance_cw(id);
        let adopt_succ = match &self.rt.succ {
            None => true,
            Some(s) => d_cw < self.id.distance_cw(s.id),
        };
        if adopt_succ {
            self.rt.succ = Some(Entry::fresh(from, id, subs));
            return;
        }
        let d_ccw = id.distance_cw(self.id);
        let adopt_pred = match &self.rt.pred {
            None => true,
            Some(p) => d_ccw < p.id.distance_cw(self.id),
        };
        if adopt_pred {
            self.rt.pred = Some(Entry::fresh(from, id, subs));
        }
    }

    /// One join/refresh step toward the rendezvous of `topic` from this
    /// node; the same logic serves the initiating subscriber and forwarders.
    fn join_step(&mut self, topic: TopicId, hops: u32, ctx: &mut Context<'_, RvrMsg>) {
        match next_hop(self.id, topic.ring_id(), self.rt.route_candidates()) {
            Some(next) => {
                self.tree.set_upstream(topic, next);
                if hops < self.cfg.max_lookup_hops {
                    ctx.send(
                        next,
                        RvrMsg::Join {
                            topic,
                            hops: hops + 1,
                        },
                    );
                }
            }
            None => self.tree.mark_rendezvous(topic),
        }
    }

    fn forward_notif(
        &mut self,
        ctx: &mut Context<'_, RvrMsg>,
        came_from: Option<NodeIdx>,
        event: EventId,
        topic: TopicId,
        hops: u32,
        path: &HopPath,
    ) {
        for t in self.tree.fanout(topic, came_from) {
            self.monitor
                .record_forward(event, self.addr, t, hops, ctx.now);
            ctx.send(
                t,
                RvrMsg::Notif {
                    event,
                    topic,
                    hops,
                    path: path.clone(),
                },
            );
        }
    }

    fn on_notif(
        &mut self,
        ctx: &mut Context<'_, RvrMsg>,
        from: NodeIdx,
        event: EventId,
        topic: TopicId,
        hops: u32,
        path: &HopPath,
    ) {
        let interested = self.subs.contains(topic);
        self.monitor.record_data_rx(self.addr, interested);
        if !self.seen.insert(event) {
            return;
        }
        let path_here = path.extend(self.addr);
        if interested {
            self.monitor
                .record_delivery_traced(event, self.addr, hops, ctx.now, &path_here);
        }
        if self.ae.enabled() {
            self.ae
                .insert(event.0, topic.0, (hops, path_here.clone()), self.round);
        }
        self.forward_notif(ctx, Some(from), event, topic, hops + 1, &path_here);
    }

    /// A recovery push arrived: count it as a first delivery only if the
    /// tree never got this event here, and never re-flood it — recovered
    /// copies spread only through further digest exchanges, so repair
    /// traffic stays pull-bounded.
    fn on_recovery(
        &mut self,
        ctx: &mut Context<'_, RvrMsg>,
        event: EventId,
        topic: TopicId,
        hops: u32,
        path: &HopPath,
    ) {
        let interested = self.subs.contains(topic);
        self.monitor.record_data_rx(self.addr, interested);
        if !self.seen.insert(event) {
            self.ae.satisfy(event.0);
            return;
        }
        let path_here = path.extend(self.addr);
        if interested {
            self.monitor
                .record_delivery_recovered(event, self.addr, hops, ctx.now, &path_here);
        }
        self.ae
            .insert(event.0, topic.0, (hops, path_here), self.round);
    }
}

/// Parallel-execution support: the shared evaluation monitor is the only
/// shared sink; its writes buffer while deferred and replay in serial
/// event order on the engine thread.
impl ParallelProtocol for RvrNode {
    type Deferred = Vec<vitis::monitor::MonitorOp>;

    fn set_deferred(&mut self, on: bool) {
        self.monitor.set_deferred(on);
    }

    fn take_deferred(&mut self) -> Self::Deferred {
        self.monitor.take_deferred()
    }

    fn apply_deferred(&mut self, ops: Self::Deferred) {
        self.monitor.apply_ops(ops);
    }
}

impl Protocol for RvrNode {
    type Msg = RvrMsg;

    fn classify(msg: &RvrMsg) -> MsgTag {
        match msg {
            RvrMsg::PsReq(_) => MsgTag::control("ps_req"),
            RvrMsg::PsResp(_) => MsgTag::control("ps_resp"),
            RvrMsg::RtReq(_) => MsgTag::control("rt_req"),
            RvrMsg::RtResp(_) => MsgTag::control("rt_resp"),
            RvrMsg::Heartbeat(..) => MsgTag::control("heartbeat"),
            RvrMsg::Join { .. } => MsgTag::control("join"),
            RvrMsg::Notif { .. } => MsgTag::data("notification"),
            RvrMsg::PublishCmd { .. } => MsgTag::data("publish_cmd"),
            RvrMsg::AeDigest(_) => MsgTag::control("ae_digest"),
            RvrMsg::AeWant(_) => MsgTag::control("ae_want"),
            RvrMsg::AePush { .. } => MsgTag::data("ae_push"),
        }
    }

    fn event_of(msg: &RvrMsg) -> Option<u64> {
        match msg {
            RvrMsg::Notif { event, .. } => Some(event.0),
            // Lost recovery pushes attribute to the event the same way lost
            // tree copies do, so `LossReason::Network` stays exact.
            RvrMsg::AePush { event, .. } => Some(event.0),
            _ => None,
        }
    }

    fn on_start(&mut self, ctx: &mut Context<'_, RvrMsg>) {
        self.addr = ctx.self_idx;
        let contacts = std::mem::take(&mut self.bootstrap);
        self.sampling.bootstrap(&contacts, self.addr);
        self.merge_and_select(&contacts, ctx);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, RvrMsg>) {
        // Peer sampling.
        self.sampling.tick();
        let se = self.self_entry();
        if let Some((partner, buf)) = self.sampling.initiate(&se, ctx.rng) {
            ctx.send(partner, RvrMsg::PsReq(buf));
        }

        // T-Man exchange.
        let partner = {
            let addrs = self.rt.addrs();
            if addrs.is_empty() {
                self.sampling.sample().first().map(|e| e.addr)
            } else {
                use rand::Rng;
                Some(addrs[ctx.rng.gen_range(0..addrs.len())])
            }
        };
        if let Some(partner) = partner {
            let buf = build_exchange_buffer(&self.rt, self.sampling.sample(), &se);
            ctx.send(partner, RvrMsg::RtReq(buf));
        }

        // Failure detection.
        self.rt.age_all();
        for dead in self.rt.expire(self.cfg.age_threshold) {
            self.sampling.remove(dead);
            self.tree.remove_peer(dead);
            self.nbr_subs.remove(&dead);
        }

        // Tree soft state decays unless refreshed by the joins below.
        self.tree.tick();
        self.tree.expire(self.cfg.tree_ttl);

        // Every subscriber re-joins every subscribed tree each round
        // (Scribe keep-alive).
        let subs = self.subs.clone();
        for topic in subs.iter() {
            self.join_step(topic, 0, ctx);
        }

        // Heartbeats keep neighbor entries fresh.
        for nbr in self.rt.addrs() {
            ctx.send(nbr, RvrMsg::Heartbeat(self.id, self.subs.clone()));
        }

        // Anti-entropy repair. Entirely inert — no sends, no RNG draws —
        // unless the layer is enabled, so default runs stay bit-identical.
        if self.ae.enabled() {
            self.round += 1;
            self.ae.tick(self.round);
            for (target, ids) in self.ae.due_pulls(self.round) {
                ctx.send(target, RvrMsg::AeWant(ids));
            }
            if let Some(entries) = self.ae.digest(self.round) {
                let entries = Arc::new(entries);
                let nbrs = self.rt.addrs();
                for t in self.ae.pick_targets(&nbrs, ctx.rng) {
                    ctx.send(t, RvrMsg::AeDigest(entries.clone()));
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, RvrMsg>, from: NodeIdx, msg: RvrMsg) {
        match msg {
            RvrMsg::PsReq(buf) => {
                let se = self.self_entry();
                let reply = self.sampling.on_request(&se, from, &buf, ctx.rng);
                ctx.send(from, RvrMsg::PsResp(reply));
            }
            RvrMsg::PsResp(buf) => self.sampling.on_response(self.addr, &buf),
            RvrMsg::RtReq(buf) => {
                let se = self.self_entry();
                let reply = build_exchange_buffer(&self.rt, self.sampling.sample(), &se);
                ctx.send(from, RvrMsg::RtResp(reply));
                self.merge_and_select(&buf, ctx);
            }
            RvrMsg::RtResp(buf) => self.merge_and_select(&buf, ctx),
            RvrMsg::Heartbeat(id, subs) => {
                if self.rt.refresh(from, subs.clone()) {
                    self.nbr_subs.insert(from, subs);
                } else {
                    self.consider_ring_candidate(from, id, subs);
                }
            }
            RvrMsg::Join { topic, hops } => {
                self.tree.add_downstream(topic, from);
                self.join_step(topic, hops, ctx);
            }
            RvrMsg::Notif {
                event,
                topic,
                hops,
                path,
            } => self.on_notif(ctx, from, event, topic, hops, &path),
            RvrMsg::PublishCmd { event, topic } => {
                self.seen.insert(event);
                // The publisher is a subscriber, so it sits in the tree; the
                // notification climbs to the rendezvous and floods down.
                let path = HopPath::origin(self.addr);
                if self.ae.enabled() {
                    self.ae
                        .insert(event.0, topic.0, (0, path.clone()), self.round);
                }
                self.forward_notif(ctx, None, event, topic, 1, &path);
            }
            RvrMsg::AeDigest(entries) => {
                let subs = self.subs.clone();
                let seen = &self.seen;
                let wants = self.ae.on_digest(
                    from,
                    &entries,
                    self.round,
                    |t| subs.contains(TopicId(t)),
                    |e| seen.contains(&EventId(e)),
                );
                if !wants.is_empty() {
                    ctx.send(from, RvrMsg::AeWant(wants));
                }
            }
            RvrMsg::AeWant(ids) => {
                for (event, topic, (hops, path)) in self.ae.serve(&ids) {
                    let push = RvrMsg::AePush {
                        event: EventId(event),
                        topic: TopicId(topic),
                        hops: hops + 1,
                        path,
                    };
                    self.monitor
                        .record_forward(EventId(event), self.addr, from, hops + 1, ctx.now);
                    ctx.send(from, push);
                }
            }
            RvrMsg::AePush {
                event,
                topic,
                hops,
                path,
            } => self.on_recovery(ctx, event, topic, hops, &path),
        }
    }

    fn on_stop(&mut self, _ctx: &mut Context<'_, RvrMsg>, _reason: StopReason) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use vitis::topic::TopicSet;
    use vitis_sim::engine::{Engine, EngineConfig};
    use vitis_sim::time::Duration;

    fn build_net(n: usize, subs_of: impl Fn(usize) -> Vec<u32>) -> (Engine<RvrNode>, Monitor) {
        let cfg = Arc::new(RvrConfig {
            est_n: 64,
            ..RvrConfig::default()
        });
        let monitor = Monitor::new();
        let mut eng = Engine::new(EngineConfig {
            seed: 9,
            round_period: Duration(64),
            desynchronize_rounds: true,
        });
        let mut directory: Vec<Entry<Subs>> = Vec::new();
        for i in 0..n {
            let subs: Subs = Arc::new(TopicSet::from_iter(subs_of(i)));
            let id = Id::of_node(i as u64);
            let boot: Vec<Entry<Subs>> = directory.iter().rev().take(4).cloned().collect();
            let node = RvrNode::new(id, subs.clone(), cfg.clone(), monitor.clone(), boot);
            let slot = eng.add_node(node);
            directory.push(Entry::fresh(slot, id, subs));
        }
        (eng, monitor)
    }

    #[test]
    fn tables_are_all_structure_no_friends() {
        let (mut eng, _) = build_net(48, |i| vec![(i % 4) as u32]);
        eng.run_rounds(25);
        for (_, n) in eng.alive_nodes() {
            let rt = n.routing_table();
            assert!(rt.friends.is_empty());
            assert!(rt.len() <= 15);
            assert!(rt.succ.is_some() && rt.pred.is_some());
        }
    }

    #[test]
    fn every_topic_tree_has_one_rendezvous_after_convergence() {
        let (mut eng, _) = build_net(48, |i| vec![(i % 3) as u32]);
        eng.run_rounds(35);
        for t in 0..3u32 {
            let rdvs = eng
                .alive_nodes()
                .filter(|(_, n)| {
                    n.tree_table()
                        .get(TopicId(t))
                        .is_some_and(|e| e.is_rendezvous())
                })
                .count();
            assert_eq!(rdvs, 1, "topic {t} has {rdvs} rendezvous nodes");
        }
    }

    #[test]
    fn subscribers_sit_in_their_topic_tree() {
        let (mut eng, _) = build_net(48, |i| vec![(i % 3) as u32]);
        eng.run_rounds(30);
        for (_, n) in eng.alive_nodes() {
            for t in n.subscriptions().iter() {
                assert!(
                    n.tree_table().has(t),
                    "subscriber lacks tree state for its topic"
                );
            }
        }
    }

    #[test]
    fn publish_delivers_through_the_tree() {
        let (mut eng, monitor) = build_net(48, |i| if i % 2 == 0 { vec![0] } else { vec![1] });
        eng.run_rounds(35);
        let expected: Vec<NodeIdx> = (1..24).map(|k| NodeIdx(k * 2)).collect();
        let e = monitor.register_event(TopicId(0), eng.now(), expected);
        eng.inject(
            NodeIdx(0),
            RvrMsg::PublishCmd {
                event: e,
                topic: TopicId(0),
            },
        );
        eng.run_rounds(4);
        let (exp, del) = monitor.event_progress(e).unwrap();
        assert_eq!(exp, 23);
        assert!(del >= 22, "tree delivered {del}/{exp}");
    }
}
