//! # vitis-baselines
//!
//! The two baseline publish/subscribe systems the paper evaluates Vitis
//! against, built on the same substrate (Newscast peer sampling, T-Man
//! overlay construction) for a fair comparison:
//!
//! * [`rvr`] — **RVR**, a structured rendezvous-routing design equivalent
//!   to Scribe/Bayeux: fixed node degree, subscription-oblivious small-world
//!   tables, a multicast tree per topic rooted at the rendezvous node.
//! * [`opt`] — **OPT**, an unstructured overlay-per-topic design equivalent
//!   to SpiderCast: correlation-aware greedy link coverage; zero relay
//!   traffic, but a bounded degree cannot keep every topic subgraph
//!   connected and the unbounded variant needs arbitrarily large degrees.
//!
//! [`systems`] exposes each as a [`vitis::runtime::PubSubProtocol`]
//! adapter ([`RvrProtocol`], [`OptProtocol`]) plugged into the shared
//! [`vitis::runtime::SystemRuntime`], which provides the whole-network
//! [`vitis::runtime::PubSub`] driver; [`RvrSystem`] and [`OptSystem`] are
//! type aliases over that runtime.

#![warn(missing_docs)]

pub mod opt;
pub mod rvr;
pub mod systems;

pub use opt::{OptConfig, OptNode};
pub use rvr::{RvrConfig, RvrNode};
pub use systems::{OptProtocol, OptSystem, RvrProtocol, RvrSystem};
