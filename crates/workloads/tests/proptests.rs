//! Property-based tests for the workload generators.

use proptest::prelude::*;
use vitis_sim::time::SimTime;
use vitis_workloads::rates::{powerlaw_rates, top_k_share};
use vitis_workloads::skype::SkypeModel;
use vitis_workloads::subscriptions::{Correlation, SubscriptionModel};
use vitis_workloads::twitter::{FollowGraph, TwitterModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated subscription set is sorted, deduped, in range, and
    /// the node count is exact — for every correlation level and sizing.
    #[test]
    fn subscriptions_are_wellformed(
        nodes in 1usize..200,
        topics in 10usize..400,
        buckets in 1usize..20,
        subs in 1usize..40,
        corr_pick in 0u8..3,
        seed: u64,
    ) {
        let correlation = match corr_pick {
            0 => Correlation::Random,
            1 => Correlation::Low,
            _ => Correlation::High,
        };
        let model = SubscriptionModel {
            num_nodes: nodes,
            num_topics: topics,
            num_buckets: buckets,
            subs_per_node: subs,
            correlation,
        };
        let out = model.generate(seed);
        prop_assert_eq!(out.len(), nodes);
        for s in &out {
            prop_assert!(s.len() <= subs.max(1));
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(s.iter().all(|&t| (t as usize) < topics));
            prop_assert!(!s.is_empty());
        }
    }

    /// Power-law rates are positive, normalized to `num_topics`, and skew
    /// monotonically with alpha.
    #[test]
    fn rates_are_normalized(topics in 2usize..500, alpha in 0.0f64..3.5, seed: u64) {
        let r = powerlaw_rates(topics, alpha, seed);
        prop_assert_eq!(r.len(), topics);
        prop_assert!(r.iter().all(|&x| x > 0.0));
        let total: f64 = r.iter().sum();
        prop_assert!((total - topics as f64).abs() < 1e-6 * topics as f64);
        let share = top_k_share(&r, 1);
        let share_flat = top_k_share(&powerlaw_rates(topics, 0.0, seed), 1);
        prop_assert!(share >= share_flat - 1e-9);
    }

    /// The follow graph has no self-loops, sorted unique followee lists,
    /// and edge conservation between out- and in-degree sums.
    #[test]
    fn twitter_graph_wellformed(users in 10usize..400, seed: u64) {
        let g = FollowGraph::generate(
            &TwitterModel {
                num_users: users,
                alpha: 1.65,
                max_out_degree: 50,
            },
            seed,
        );
        prop_assert_eq!(g.len(), users);
        for (u, f) in g.follows.iter().enumerate() {
            prop_assert!(!f.contains(&(u as u32)));
            prop_assert!(f.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(f.iter().all(|&v| (v as usize) < users));
        }
        let out_sum: u64 = g.out_degrees().iter().sum();
        let in_sum: u64 = g.in_degrees().iter().sum();
        prop_assert_eq!(out_sum, in_sum);
    }

    /// BFS samples have the requested size (capped by the graph), dense
    /// re-indexing, and edge validity.
    #[test]
    fn bfs_sample_wellformed(users in 20usize..300, target in 1usize..400, seed: u64) {
        let g = FollowGraph::generate(
            &TwitterModel {
                num_users: users,
                alpha: 1.65,
                max_out_degree: 30,
            },
            seed,
        );
        let s = g.bfs_sample(target, seed ^ 1);
        prop_assert_eq!(s.len(), target.min(users));
        for f in &s.follows {
            prop_assert!(f.iter().all(|&v| (v as usize) < s.len()));
        }
    }

    /// Skype traces validate (alternating sessions) and never exceed the
    /// population bound at any probe time.
    #[test]
    fn skype_trace_population_bounded(
        nodes in 5usize..150,
        horizon in 20.0f64..300.0,
        seed: u64,
        probe_frac in 0.0f64..1.0,
    ) {
        let model = SkypeModel {
            num_nodes: nodes,
            horizon_hours: horizon,
            flash_crowd_hour: horizon * 0.6,
            ..SkypeModel::default()
        };
        let trace = model.generate(seed);
        prop_assert!(trace.num_logical_nodes() as usize <= nodes);
        let probe = SimTime((horizon * probe_frac * model.ticks_per_hour as f64) as u64);
        prop_assert!(trace.online_at(probe) <= nodes);
        // Horizon bound holds for every event.
        for e in trace.events() {
            prop_assert!(e.time <= model.horizon());
        }
    }
}
