//! A synthetic Skype-like churn trace (the paper's Section IV-F workload).
//!
//! **Substitution note** (see DESIGN.md §3): the Guha et al. 2005 Skype
//! superpeer measurement is not available offline. Figure 12 uses the trace
//! for: ~4000 monitored nodes over one month, a slowly varying online
//! population (hundreds to ~1200 concurrent), moderate steady churn, and
//! flash-crowd episodes where many nodes join nearly simultaneously. This
//! generator reproduces those regimes: session arrivals follow a diurnally
//! modulated Poisson process, session lengths are heavy-tailed
//! (log-normal, median a few hours), and an explicit flash crowd injects a
//! burst of joins at a configurable time.

use rand::rngs::SmallRng;
use rand::Rng;
use vitis_sim::churn::{ChurnEvent, ChurnKind, ChurnTrace};
use vitis_sim::rng::{domain, stream_rng};
use vitis_sim::time::SimTime;

/// Parameters of the synthetic churn-trace generator. Times are in *ticks*;
/// use [`SkypeModel::ticks_per_hour`] to relate them to the paper's hours.
#[derive(Clone, Copy, Debug)]
pub struct SkypeModel {
    /// Monitored population (paper: 4000).
    pub num_nodes: usize,
    /// Trace horizon in hours (paper: ~1 month ≈ 720 h).
    pub horizon_hours: f64,
    /// Simulation ticks per trace hour.
    pub ticks_per_hour: u64,
    /// Mean offline gap between sessions, in hours.
    pub mean_off_hours: f64,
    /// Log-normal session length: median, in hours.
    pub median_session_hours: f64,
    /// Log-normal session length: sigma of the underlying normal.
    pub session_sigma: f64,
    /// Diurnal modulation depth in `[0, 1)`: join pressure swings by this
    /// fraction around its mean over a 24 h cycle.
    pub diurnal_depth: f64,
    /// Fraction of the population reserved for the flash crowd.
    pub flash_crowd_frac: f64,
    /// Flash-crowd start, in hours from trace start.
    pub flash_crowd_hour: f64,
    /// Window over which the flash crowd's joins spread, in hours.
    pub flash_crowd_window_hours: f64,
}

impl Default for SkypeModel {
    fn default() -> Self {
        SkypeModel {
            num_nodes: 4000,
            horizon_hours: 720.0,
            ticks_per_hour: 64,
            mean_off_hours: 30.0,
            median_session_hours: 8.0,
            session_sigma: 1.4,
            diurnal_depth: 0.5,
            flash_crowd_frac: 0.15,
            flash_crowd_hour: 480.0,
            flash_crowd_window_hours: 2.0,
        }
    }
}

impl SkypeModel {
    /// Generate a validated churn trace. Deterministic in `seed`.
    pub fn generate(&self, seed: u64) -> ChurnTrace {
        assert!(self.num_nodes > 0 && self.horizon_hours > 0.0);
        assert!((0.0..1.0).contains(&self.diurnal_depth));
        assert!((0.0..1.0).contains(&self.flash_crowd_frac));
        let mut rng = stream_rng(seed, domain::WORKLOAD, 0x5C1E);
        let mut events = Vec::new();
        let n_flash = (self.num_nodes as f64 * self.flash_crowd_frac) as usize;
        let n_regular = self.num_nodes - n_flash;
        for node in 0..self.num_nodes as u32 {
            let flash = (node as usize) >= n_regular;
            self.generate_node(node, flash, &mut rng, &mut events);
        }
        ChurnTrace::new(events).expect("generator emits alternating join/leave")
    }

    fn generate_node(
        &self,
        node: u32,
        flash: bool,
        rng: &mut SmallRng,
        events: &mut Vec<ChurnEvent>,
    ) {
        let mut t = if flash {
            // Reserved nodes stay offline until the flash crowd fires, then
            // join inside the window.
            self.flash_crowd_hour + rng.gen::<f64>() * self.flash_crowd_window_hours
        } else {
            // First join: spread over the initial off period, thinned by
            // the diurnal cycle.
            self.next_offline_gap(0.0, rng)
        };
        loop {
            if t >= self.horizon_hours {
                return;
            }
            events.push(self.event(node, t, ChurnKind::Join));
            let session = self.session_length(rng);
            let leave = t + session;
            if leave >= self.horizon_hours {
                return; // stays online past the horizon
            }
            events.push(self.event(node, leave, ChurnKind::Leave));
            t = leave + self.next_offline_gap(leave, rng);
            // Guard against zero-length gaps producing join==leave ticks
            // out of order after rounding.
            t = t.max(leave + 2.0 / self.ticks_per_hour as f64);
        }
    }

    fn event(&self, node: u32, hour: f64, kind: ChurnKind) -> ChurnEvent {
        ChurnEvent {
            time: SimTime((hour * self.ticks_per_hour as f64) as u64),
            node,
            kind,
        }
    }

    /// Exponential offline gap, lengthened when the diurnal cycle is low so
    /// the online population oscillates with a 24 h period.
    fn next_offline_gap(&self, now_hours: f64, rng: &mut SmallRng) -> f64 {
        let phase = (now_hours / 24.0) * std::f64::consts::TAU;
        let pressure = 1.0 + self.diurnal_depth * phase.sin();
        let mean = self.mean_off_hours / pressure.max(1e-3);
        let u: f64 = rng.gen::<f64>().max(1e-12);
        -mean * u.ln()
    }

    /// Log-normal session length via Box–Muller.
    fn session_length(&self, rng: &mut SmallRng) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let mu = self.median_session_hours.ln();
        (mu + self.session_sigma * z).exp().max(2.0 / self.ticks_per_hour as f64)
    }

    /// The flash-crowd start time in ticks (for experiment annotations).
    pub fn flash_crowd_time(&self) -> SimTime {
        SimTime((self.flash_crowd_hour * self.ticks_per_hour as f64) as u64)
    }

    /// Horizon in ticks.
    pub fn horizon(&self) -> SimTime {
        SimTime((self.horizon_hours * self.ticks_per_hour as f64) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SkypeModel {
        SkypeModel {
            num_nodes: 300,
            horizon_hours: 200.0,
            flash_crowd_hour: 120.0,
            ..SkypeModel::default()
        }
    }

    #[test]
    fn trace_is_valid_and_deterministic() {
        let a = small().generate(1);
        let b = small().generate(1);
        assert_eq!(a.events().len(), b.events().len());
        assert!(!a.events().is_empty());
        assert!(a.num_logical_nodes() <= 300);
    }

    #[test]
    fn population_is_moderate_and_positive() {
        let m = small();
        let tr = m.generate(2);
        let mid = SimTime(m.horizon().0 / 3);
        let online = tr.online_at(mid);
        assert!(online > 10, "online at mid-trace: {online}");
        assert!(online < 300, "not everyone online at once: {online}");
    }

    #[test]
    fn flash_crowd_spikes_population() {
        let m = small();
        let tr = m.generate(3);
        let before = tr.online_at(SimTime(m.flash_crowd_time().0 - 4 * m.ticks_per_hour));
        let after = tr.online_at(SimTime(
            m.flash_crowd_time().0 + (m.flash_crowd_window_hours * m.ticks_per_hour as f64) as u64 + 1,
        ));
        let burst = after as i64 - before as i64;
        let reserved = (300.0 * m.flash_crowd_frac) as i64;
        assert!(
            burst > reserved / 2,
            "flash crowd too weak: {before} -> {after} (reserved {reserved})"
        );
    }

    #[test]
    fn sessions_are_heavy_tailed() {
        let m = small();
        let mut rng = stream_rng(9, domain::WORKLOAD, 0);
        let lens: Vec<f64> = (0..5000).map(|_| m.session_length(&mut rng)).collect();
        let mean = lens.iter().sum::<f64>() / lens.len() as f64;
        let mut sorted = lens.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[lens.len() / 2];
        assert!((median - 8.0).abs() < 1.5, "median {median} ≈ 8h");
        assert!(mean > median * 1.3, "heavy tail: mean {mean} vs median {median}");
    }

    #[test]
    fn diurnal_cycle_modulates_gaps() {
        let m = small();
        let mut rng = stream_rng(10, domain::WORKLOAD, 0);
        // Average gaps drawn at the peak vs the trough of the cycle.
        let peak: f64 = (0..3000).map(|_| m.next_offline_gap(6.0, &mut rng)).sum::<f64>() / 3000.0;
        let trough: f64 = (0..3000).map(|_| m.next_offline_gap(18.0, &mut rng)).sum::<f64>() / 3000.0;
        assert!(trough > peak * 1.5, "peak {peak} vs trough {trough}");
    }
}
