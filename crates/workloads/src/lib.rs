//! # vitis-workloads
//!
//! Workload generators for the Vitis evaluation:
//!
//! * [`subscriptions`] — the synthetic random / low-correlation /
//!   high-correlation bucket patterns of Section IV-A,
//! * [`rates`] — uniform and power-law per-topic publication rates
//!   (Section IV-D's α sweep),
//! * [`twitter`] — a synthetic power-law follow graph with the statistical
//!   profile the paper reports for its Twitter trace (α ≈ 1.65), plus the
//!   BFS sampling procedure of Section IV-E,
//! * [`skype`] — a synthetic superpeer availability trace with heavy-tailed
//!   sessions, diurnal modulation and a flash-crowd episode, standing in
//!   for the Skype trace of Section IV-F.
//!
//! The Twitter and Skype generators are documented substitutions for
//! datasets that are not available offline; DESIGN.md §3 records what the
//! paper used, what is built here, and why the substitution preserves the
//! behaviours the experiments exercise.

#![warn(missing_docs)]

pub mod rates;
pub mod skype;
pub mod subscriptions;
pub mod twitter;

pub use rates::{powerlaw_rates, uniform_rates};
pub use skype::SkypeModel;
pub use subscriptions::{Correlation, SubscriptionModel};
pub use twitter::{FollowGraph, TwitterModel};
