//! A synthetic Twitter-like follow graph (the paper's Section IV-E trace).
//!
//! **Substitution note** (see DESIGN.md §3): the WOSN'10 Twitter dataset
//! used by the paper is not available offline. The paper relies on exactly
//! three of its properties: every user is both a subscriber (it follows)
//! and a topic (it is followed); in- and out-degrees follow a power law
//! with α ≈ 1.65; and the evaluation runs on a ~10 000-node BFS sample.
//! This module generates a directed graph with those properties and
//! re-implements the BFS sampling procedure the paper describes.
//!
//! Generation: each user draws an out-degree from a bounded Zipf(α) and an
//! *attractiveness* weight from the same family; follow targets are drawn
//! proportionally to attractiveness, which yields a power-law in-degree
//! with the same exponent family.

use rand::Rng;
use std::collections::HashSet;
use vitis_sim::rng::{domain, stream_rng};
use vitis_sim::stats::{powerlaw_mle, Zipf};

/// Parameters of the synthetic follow-graph generator.
#[derive(Clone, Copy, Debug)]
pub struct TwitterModel {
    /// Users in the full synthetic graph (the paper's full log has ~2.4 M;
    /// anything ≳ 5× the sample size works).
    pub num_users: usize,
    /// Power-law exponent for degrees (paper estimate: 1.65).
    pub alpha: f64,
    /// Upper bound on a user's out-degree (keeps generation linear).
    pub max_out_degree: usize,
}

impl Default for TwitterModel {
    fn default() -> Self {
        TwitterModel {
            num_users: 60_000,
            alpha: 1.65,
            max_out_degree: 2_000,
        }
    }
}

/// A directed follow graph: `follows[u]` lists the users `u` follows
/// (sorted). Subscriptions and topics share the node index space.
#[derive(Clone, Debug)]
pub struct FollowGraph {
    /// Per-user sorted followee lists.
    pub follows: Vec<Vec<u32>>,
}

/// Summary statistics of a follow graph (regenerates the paper's Figure 9
/// table for our synthetic trace).
#[derive(Clone, Debug)]
pub struct TraceStats {
    /// Number of users (= number of topics).
    pub num_users: usize,
    /// Number of follow relations (edges).
    pub num_edges: usize,
    /// Mean out-degree (subscriptions per node).
    pub mean_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: u64,
    /// Maximum in-degree (largest audience).
    pub max_in_degree: u64,
    /// Fraction of users following nobody.
    pub frac_no_followees: f64,
    /// Fraction of users with no followers.
    pub frac_no_followers: f64,
    /// MLE power-law exponent of the out-degree distribution (x ≥ 5).
    pub alpha_out: Option<f64>,
    /// MLE power-law exponent of the in-degree distribution (x ≥ 5).
    pub alpha_in: Option<f64>,
}

impl FollowGraph {
    /// Generate the full synthetic graph. Deterministic in `seed`.
    pub fn generate(model: &TwitterModel, seed: u64) -> FollowGraph {
        let n = model.num_users;
        assert!(n >= 2, "need at least two users");
        let mut rng = stream_rng(seed, domain::WORKLOAD, 0x7117);
        let out_deg_dist = Zipf::new(model.max_out_degree.min(n - 1) as u64, model.alpha);
        // Attractiveness weights: heavy-tailed so the in-degree inherits the
        // power law. Drawn from the same Zipf family.
        let attr_dist = Zipf::new((n as u64).min(100_000), model.alpha);
        let weights: Vec<f64> = (0..n).map(|_| attr_dist.sample(&mut rng) as f64).collect();
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &w in &weights {
            acc += w;
            cum.push(acc);
        }
        let total = acc;
        let mut follows = Vec::with_capacity(n);
        let mut chosen: HashSet<u32> = HashSet::new();
        for u in 0..n {
            let d = out_deg_dist.sample(&mut rng) as usize;
            chosen.clear();
            // Rejection-sample distinct targets ∝ attractiveness; cap the
            // attempts so pathological draws cannot loop forever.
            let mut attempts = 0;
            while chosen.len() < d && attempts < d * 20 {
                attempts += 1;
                let x = rng.gen::<f64>() * total;
                let v = cum.partition_point(|&c| c <= x).min(n - 1) as u32;
                if v as usize != u {
                    chosen.insert(v);
                }
            }
            let mut list: Vec<u32> = chosen.iter().copied().collect();
            list.sort_unstable();
            follows.push(list);
        }
        FollowGraph { follows }
    }

    /// Number of users.
    pub fn len(&self) -> usize {
        self.follows.len()
    }

    /// Whether the graph has no users.
    pub fn is_empty(&self) -> bool {
        self.follows.is_empty()
    }

    /// Out-degrees of all users.
    pub fn out_degrees(&self) -> Vec<u64> {
        self.follows.iter().map(|f| f.len() as u64).collect()
    }

    /// In-degrees of all users.
    pub fn in_degrees(&self) -> Vec<u64> {
        let mut d = vec![0u64; self.len()];
        for f in &self.follows {
            for &v in f {
                d[v as usize] += 1;
            }
        }
        d
    }

    /// Summary statistics (our Figure 9).
    pub fn stats(&self) -> TraceStats {
        let out = self.out_degrees();
        let inn = self.in_degrees();
        let num_edges: u64 = out.iter().sum();
        TraceStats {
            num_users: self.len(),
            num_edges: num_edges as usize,
            mean_out_degree: if self.is_empty() {
                0.0
            } else {
                num_edges as f64 / self.len() as f64
            },
            max_out_degree: out.iter().copied().max().unwrap_or(0),
            max_in_degree: inn.iter().copied().max().unwrap_or(0),
            frac_no_followees: frac_zero(&out),
            frac_no_followers: frac_zero(&inn),
            alpha_out: powerlaw_mle(&out, 5),
            alpha_in: powerlaw_mle(&inn, 5),
        }
    }

    /// The paper's sampling procedure: multiple BFS passes from random
    /// seeds, following *followee* edges, until ~`target` users are
    /// collected; then the induced subgraph (subscriptions to users outside
    /// the sample are dropped and ids are re-indexed densely).
    pub fn bfs_sample(&self, target: usize, seed: u64) -> FollowGraph {
        let n = self.len();
        let target = target.min(n);
        let mut rng = stream_rng(seed, domain::WORKLOAD, 0xBF5);
        let mut in_sample = vec![false; n];
        let mut sample: Vec<u32> = Vec::with_capacity(target);
        let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
        while sample.len() < target {
            if queue.is_empty() {
                // Start (or restart) from a fresh random seed user; fall
                // back to a scan when random probing keeps hitting already
                // sampled users (relevant when the sample nears the graph).
                let mut s = rng.gen_range(0..n as u32);
                let mut guard = 0;
                while in_sample[s as usize] && guard < 100 {
                    s = rng.gen_range(0..n as u32);
                    guard += 1;
                }
                if in_sample[s as usize] {
                    match (0..n as u32).find(|&v| !in_sample[v as usize]) {
                        Some(v) => s = v,
                        None => break,
                    }
                }
                in_sample[s as usize] = true;
                sample.push(s);
                queue.push_back(s);
                continue;
            }
            let u = queue.pop_front().expect("checked non-empty");
            for &v in &self.follows[u as usize] {
                if sample.len() >= target {
                    break;
                }
                if !in_sample[v as usize] {
                    in_sample[v as usize] = true;
                    sample.push(v);
                    queue.push_back(v);
                }
            }
        }
        // Re-index densely and keep only intra-sample follows.
        let mut new_id = vec![u32::MAX; n];
        for (i, &u) in sample.iter().enumerate() {
            new_id[u as usize] = i as u32;
        }
        let follows = sample
            .iter()
            .map(|&u| {
                let mut f: Vec<u32> = self.follows[u as usize]
                    .iter()
                    .filter_map(|&v| {
                        let nv = new_id[v as usize];
                        (nv != u32::MAX).then_some(nv)
                    })
                    .collect();
                f.sort_unstable();
                f
            })
            .collect();
        FollowGraph { follows }
    }
}

fn frac_zero(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().filter(|&&x| x == 0).count() as f64 / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model() -> TwitterModel {
        TwitterModel {
            num_users: 4000,
            alpha: 1.65,
            max_out_degree: 500,
        }
    }

    #[test]
    fn generation_is_deterministic_and_self_loop_free() {
        let m = small_model();
        let a = FollowGraph::generate(&m, 1);
        let b = FollowGraph::generate(&m, 1);
        assert_eq!(a.follows, b.follows);
        for (u, f) in a.follows.iter().enumerate() {
            assert!(!f.contains(&(u as u32)), "self-follow at {u}");
            assert!(f.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        }
    }

    #[test]
    fn degrees_are_heavy_tailed_with_target_alpha() {
        let g = FollowGraph::generate(&small_model(), 2);
        let s = g.stats();
        assert_eq!(s.num_users, 4000);
        assert!(s.max_out_degree > 20, "out tail too light: {}", s.max_out_degree);
        assert!(s.max_in_degree > 20, "in tail too light: {}", s.max_in_degree);
        let a_out = s.alpha_out.expect("enough data");
        assert!(
            (a_out - 1.65).abs() < 0.35,
            "out-degree alpha {a_out}, want ≈1.65"
        );
        let a_in = s.alpha_in.expect("enough data");
        assert!((a_in - 1.65).abs() < 0.6, "in-degree alpha {a_in}");
    }

    #[test]
    fn bfs_sample_has_requested_size_and_valid_edges() {
        let g = FollowGraph::generate(&small_model(), 3);
        let s = g.bfs_sample(800, 4);
        assert_eq!(s.len(), 800);
        for f in &s.follows {
            assert!(f.iter().all(|&v| (v as usize) < 800));
        }
        // The sample keeps a meaningful number of intra-sample edges.
        let edges: u64 = s.out_degrees().iter().sum();
        assert!(edges > 400, "sample too sparse: {edges} edges");
    }

    #[test]
    fn bfs_sample_preserves_degree_shape() {
        // "We took several samples and the similarity of in-degree and
        // out-degree distribution of the samples and that of the full log
        // was confirmed."
        let g = FollowGraph::generate(
            &TwitterModel {
                num_users: 12_000,
                ..small_model()
            },
            5,
        );
        let s = g.bfs_sample(3000, 6);
        let alpha_sample = powerlaw_mle(&s.in_degrees(), 5);
        assert!(alpha_sample.is_some());
        let a = alpha_sample.unwrap();
        assert!((1.2..2.6).contains(&a), "sample in-degree alpha {a}");
    }

    #[test]
    fn sample_larger_than_graph_is_whole_graph() {
        let g = FollowGraph::generate(
            &TwitterModel {
                num_users: 100,
                alpha: 1.65,
                max_out_degree: 20,
            },
            7,
        );
        let s = g.bfs_sample(1000, 8);
        assert_eq!(s.len(), 100);
    }
}
