//! Publication-rate models (Section IV-D).
//!
//! The paper sweeps a power-law event-rate distribution over topics with
//! exponent α from 0.3 (near-uniform) to 3 (a single hot topic dominates)
//! and shows Vitis adapts its clustering to the hot topics.

use vitis_sim::rng::{domain, stream_rng};
use rand::seq::SliceRandom;

/// Uniform rate 1 for every topic (the default outside Figure 7).
pub fn uniform_rates(num_topics: usize) -> Vec<f64> {
    vec![1.0; num_topics]
}

/// Power-law rates: topic with popularity rank `k` (1-based) gets rate
/// `k^(−alpha)`, normalized so the total mass equals `num_topics` (keeping
/// the overall event volume comparable across α). The rank-to-topic
/// assignment is a seeded random permutation so hot topics are spread over
/// the id space.
pub fn powerlaw_rates(num_topics: usize, alpha: f64, seed: u64) -> Vec<f64> {
    assert!(num_topics > 0);
    assert!(alpha.is_finite() && alpha >= 0.0);
    let raw: Vec<f64> = (1..=num_topics).map(|k| (k as f64).powf(-alpha)).collect();
    let total: f64 = raw.iter().sum();
    let scale = num_topics as f64 / total;
    let mut topics: Vec<usize> = (0..num_topics).collect();
    let mut rng = stream_rng(seed, domain::WORKLOAD, 0x4A7E);
    topics.shuffle(&mut rng);
    let mut rates = vec![0.0; num_topics];
    for (rank0, &t) in topics.iter().enumerate() {
        rates[t] = raw[rank0] * scale;
    }
    rates
}

/// The share of the total rate mass carried by the hottest `k` topics — a
/// skew diagnostic used in tests and experiment output.
pub fn top_k_share(rates: &[f64], k: usize) -> f64 {
    let total: f64 = rates.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut sorted = rates.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("rates are finite"));
    sorted.iter().take(k).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_rates_are_ones() {
        let r = uniform_rates(5);
        assert_eq!(r, vec![1.0; 5]);
    }

    #[test]
    fn powerlaw_mass_is_normalized() {
        for alpha in [0.3, 1.0, 3.0] {
            let r = powerlaw_rates(100, alpha, 1);
            let total: f64 = r.iter().sum();
            assert!((total - 100.0).abs() < 1e-6, "alpha {alpha}: total {total}");
            assert!(r.iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn skew_grows_with_alpha() {
        let s03 = top_k_share(&powerlaw_rates(1000, 0.3, 2), 10);
        let s1 = top_k_share(&powerlaw_rates(1000, 1.0, 2), 10);
        let s3 = top_k_share(&powerlaw_rates(1000, 3.0, 2), 10);
        assert!(s03 < s1 && s1 < s3, "{s03} {s1} {s3}");
        assert!(s03 < 0.05, "alpha 0.3 is near uniform: {s03}");
        assert!(s3 > 0.95, "alpha 3 is dominated by hot topics: {s3}");
    }

    #[test]
    fn hot_topics_are_shuffled_across_ids() {
        let r = powerlaw_rates(1000, 2.0, 3);
        // The hottest topic should usually not be topic 0.
        let hottest = r
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let r2 = powerlaw_rates(1000, 2.0, 4);
        let hottest2 = r2
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_ne!(hottest, hottest2, "different seeds place hot topics differently");
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(powerlaw_rates(50, 1.5, 9), powerlaw_rates(50, 1.5, 9));
    }

    #[test]
    fn top_k_share_handles_edges() {
        assert_eq!(top_k_share(&[], 3), 0.0);
        assert_eq!(top_k_share(&[0.0, 0.0], 1), 0.0);
        assert!((top_k_share(&[1.0, 1.0, 2.0], 1) - 0.5).abs() < 1e-12);
    }
}
