//! Synthetic subscription patterns (Section IV-A of the paper, after the
//! preference-clustering model of Wong et al.).
//!
//! All three patterns give every node the same number of subscriptions and
//! every topic a uniform expected popularity; they differ only in how much
//! the subscription sets of different nodes *correlate*:
//!
//! * **Random** — each node picks `subs_per_node` topics uniformly from all
//!   `num_topics`.
//! * **Low correlation** — topics are grouped into `num_buckets` buckets;
//!   each node picks 5 buckets and draws `subs_per_node / 5` topics from
//!   each.
//! * **High correlation** — each node picks 2 buckets and draws
//!   `subs_per_node / 2` topics from each.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use vitis_sim::rng::{domain, stream_rng};

/// The interest-correlation level of a synthetic subscription pattern.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Correlation {
    /// Uniform random topic choice.
    Random,
    /// 5 buckets per node (the paper's "low correlation").
    Low,
    /// 2 buckets per node (the paper's "high correlation").
    High,
}

impl Correlation {
    /// Number of buckets a node draws from, or `None` for fully random.
    pub fn buckets_per_node(self) -> Option<usize> {
        match self {
            Correlation::Random => None,
            Correlation::Low => Some(5),
            Correlation::High => Some(2),
        }
    }

    /// Display label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            Correlation::Random => "random",
            Correlation::Low => "low correlation",
            Correlation::High => "high correlation",
        }
    }

    /// Single-word label, safe for identifiers such as run ids.
    pub fn slug(self) -> &'static str {
        match self {
            Correlation::Random => "random",
            Correlation::Low => "low",
            Correlation::High => "high",
        }
    }
}

/// Parameters of the synthetic subscription generator. Paper defaults:
/// 10 000 nodes, 5000 topics, 100 buckets, 50 subscriptions per node.
#[derive(Clone, Copy, Debug)]
pub struct SubscriptionModel {
    /// Number of nodes.
    pub num_nodes: usize,
    /// Number of topics.
    pub num_topics: usize,
    /// Number of topic buckets for the correlated patterns.
    pub num_buckets: usize,
    /// Subscriptions per node.
    pub subs_per_node: usize,
    /// Correlation level.
    pub correlation: Correlation,
}

impl SubscriptionModel {
    /// The paper's default setting scaled to `num_nodes` nodes, keeping the
    /// topics-per-node and topic/bucket ratios of the original (5000 topics
    /// and 100 buckets at 10 000 nodes).
    pub fn paper_scaled(num_nodes: usize, correlation: Correlation) -> Self {
        let num_topics = (num_nodes / 2).max(20);
        let num_buckets = (num_topics / 50).max(4);
        SubscriptionModel {
            num_nodes,
            num_topics,
            num_buckets,
            subs_per_node: 50.min(num_topics / 2).max(2),
            correlation,
        }
    }

    /// Generate one subscription set per node. Deterministic in `seed`.
    ///
    /// Each set is returned as a sorted de-duplicated topic-id list; sets
    /// may be slightly smaller than `subs_per_node` when duplicates are
    /// drawn (matching how such generators are typically implemented).
    pub fn generate(&self, seed: u64) -> Vec<Vec<u32>> {
        assert!(self.num_topics >= 1 && self.num_nodes >= 1);
        let mut rng = stream_rng(seed, domain::WORKLOAD, 0xBEEF);
        match self.correlation.buckets_per_node() {
            None => self.generate_random(&mut rng),
            Some(k) => self.generate_bucketed(k, &mut rng),
        }
    }

    fn generate_random(&self, rng: &mut SmallRng) -> Vec<Vec<u32>> {
        (0..self.num_nodes)
            .map(|_| {
                let mut v: Vec<u32> = (0..self.subs_per_node)
                    .map(|_| rng.gen_range(0..self.num_topics as u32))
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect()
    }

    fn generate_bucketed(&self, buckets_per_node: usize, rng: &mut SmallRng) -> Vec<Vec<u32>> {
        let nb = self.num_buckets.min(self.num_topics).max(1);
        // A node cannot draw from more buckets than it has subscriptions
        // (or than exist): clamp so the subscription-count bound holds even
        // for degenerate sizings.
        let buckets_per_node = buckets_per_node.clamp(1, self.subs_per_node.max(1)).min(nb);
        let per_bucket = self.subs_per_node / buckets_per_node;
        // Topics are striped over buckets: topic t belongs to bucket t % nb.
        let bucket_topics: Vec<Vec<u32>> = (0..nb)
            .map(|b| {
                (0..self.num_topics as u32)
                    .filter(|t| (*t as usize) % nb == b)
                    .collect()
            })
            .collect();
        let mut all_buckets: Vec<usize> = (0..nb).collect();
        (0..self.num_nodes)
            .map(|_| {
                all_buckets.shuffle(rng);
                let mut v = Vec::with_capacity(self.subs_per_node);
                for &b in all_buckets.iter().take(buckets_per_node) {
                    let topics = &bucket_topics[b];
                    for _ in 0..per_bucket.max(1) {
                        v.push(topics[rng.gen_range(0..topics.len())]);
                    }
                }
                v.sort_unstable();
                v.dedup();
                v
            })
            .collect()
    }
}

/// Pairwise Jaccard similarities over a random sample of node pairs.
///
/// Note that with uniform topic popularity the *mean* similarity is nearly
/// identical across the three patterns (the expected intersection is fixed
/// by the subscription count); correlation shows up in the upper tail —
/// correlated patterns produce many zero-overlap pairs and a fat tail of
/// strongly overlapping ones, which is exactly what Equation 1's friend
/// selection exploits.
pub fn jaccard_samples(subs: &[Vec<u32>], sample_pairs: usize, seed: u64) -> Vec<f64> {
    if subs.len() < 2 || sample_pairs == 0 {
        return Vec::new();
    }
    let mut rng = stream_rng(seed, domain::WORKLOAD, 0x3ACA);
    let mut out = Vec::with_capacity(sample_pairs);
    for _ in 0..sample_pairs {
        let i = rng.gen_range(0..subs.len());
        let mut j = rng.gen_range(0..subs.len());
        while j == i {
            j = rng.gen_range(0..subs.len());
        }
        out.push(jaccard(&subs[i], &subs[j]));
    }
    out
}

fn jaccard(a: &[u32], b: &[u32]) -> f64 {
    let mut i = 0;
    let mut j = 0;
    let mut inter = 0usize;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(corr: Correlation) -> SubscriptionModel {
        // Paper-proportioned: 50 topics per bucket, so the high-correlation
        // pattern's 25 draws per bucket do not saturate a bucket.
        SubscriptionModel {
            num_nodes: 400,
            num_topics: 500,
            num_buckets: 10,
            subs_per_node: 50,
            correlation: corr,
        }
    }

    #[test]
    fn sizes_are_close_to_target() {
        for corr in [Correlation::Random, Correlation::Low, Correlation::High] {
            let subs = model(corr).generate(1);
            assert_eq!(subs.len(), 400);
            for s in &subs {
                assert!(s.len() <= 50);
                assert!(s.len() >= 30, "{corr:?}: only {} topics", s.len());
                assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
                assert!(s.iter().all(|&t| t < 500));
            }
        }
    }

    #[test]
    fn correlation_shows_in_the_upper_tail() {
        let p95 = |c: Correlation| {
            let xs = jaccard_samples(&model(c).generate(2), 4000, 9);
            vitis_sim::stats::percentile(&xs, 95.0)
        };
        let r = p95(Correlation::Random);
        let lo = p95(Correlation::Low);
        let hi = p95(Correlation::High);
        assert!(
            hi > lo && lo > r,
            "expected p95: hi > lo > random, got {hi} {lo} {r}"
        );
        assert!(hi > 1.5 * r, "high correlation should be strong: {hi} vs {r}");
    }

    #[test]
    fn correlated_patterns_have_many_disjoint_pairs() {
        let frac_zero = |c: Correlation| {
            let xs = jaccard_samples(&model(c).generate(2), 4000, 9);
            xs.iter().filter(|&&x| x == 0.0).count() as f64 / xs.len() as f64
        };
        assert!(frac_zero(Correlation::High) > 0.3);
        assert!(frac_zero(Correlation::Random) < 0.1);
    }

    #[test]
    fn topic_popularity_stays_roughly_uniform() {
        // "In all the above subscription patterns, the average topic
        // popularity is uniform."
        for corr in [Correlation::Random, Correlation::High] {
            let subs = model(corr).generate(3);
            let mut pop = vec![0u32; 500];
            for s in &subs {
                for &t in s {
                    pop[t as usize] += 1;
                }
            }
            let mean = pop.iter().sum::<u32>() as f64 / 500.0;
            let loaded = pop.iter().filter(|&&p| p as f64 > 5.0 * mean).count();
            assert!(
                loaded < 10,
                "{corr:?}: {loaded} topics are >5x mean popularity"
            );
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = model(Correlation::High).generate(7);
        let b = model(Correlation::High).generate(7);
        let c = model(Correlation::High).generate(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn paper_scaled_defaults() {
        let m = SubscriptionModel::paper_scaled(10_000, Correlation::Low);
        assert_eq!(m.num_topics, 5000);
        assert_eq!(m.num_buckets, 100);
        assert_eq!(m.subs_per_node, 50);
        let small = SubscriptionModel::paper_scaled(100, Correlation::Low);
        assert!(small.num_topics >= 20);
        assert!(small.subs_per_node >= 2);
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(jaccard(&[1], &[2]), 0.0);
        assert!((jaccard(&[1, 2, 3], &[2, 3, 4]) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&[], &[]), 0.0);
    }
}
