//! Offline stand-in for the `rand` 0.8 crate.
//!
//! The container this repo builds in has no network, so the real crates-io
//! `rand` cannot be fetched. This stub reimplements the *exact* subset the
//! workspace uses, bit-compatible with rand 0.8.5 + rand_core 0.6.4:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the 64-bit `SmallRng` of rand 0.8)
//! * [`SeedableRng::seed_from_u64`] — the PCG32-based seed expansion of
//!   rand_core 0.6
//! * [`Rng::gen`] / [`Rng::gen_range`] / [`Rng::gen_bool`] — `Standard`
//!   distribution and widening-multiply uniform integer sampling with the
//!   same rejection zones as rand 0.8
//! * [`seq::SliceRandom::shuffle`] — the same reverse Fisher–Yates
//!
//! Determinism matters more than coverage here: fixed-seed golden tests pin
//! every byte of simulator output, so the value streams produced by this
//! crate are part of the repo's contract. Do not change the algorithms.

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Seed expansion identical to rand_core 0.6.4: a PCG32 stream fills the
    /// seed bytes in 4-byte little-endian chunks.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;

        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // Advance the state first, to get away from low-Hamming-weight
            // input values.
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    use crate::RngCore;

    /// A value-producing distribution (only `Standard` is provided).
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The `Standard` distribution of rand 0.8: full-range integers, floats
    /// uniform in `[0, 1)` with 53 (f64) / 24 (f32) bits of precision.
    pub struct Standard;

    macro_rules! standard_uint {
        ($($ty:ty => $method:ident),*) => {$(
            impl Distribution<$ty> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $ty {
                    rng.$method() as $ty
                }
            }
        )*};
    }
    // Same word widths as rand 0.8: <= 32-bit types draw next_u32,
    // 64-bit types draw next_u64.
    standard_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   u64 => next_u64, i64 => next_u64,
                   usize => next_u64, isize => next_u64);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            // rand 0.8 fills the high word first.
            let hi = rng.next_u64() as u128;
            let lo = rng.next_u64() as u128;
            (hi << 64) | lo
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            // Compare against the most significant bit of a u32.
            rng.next_u32() & (1 << 31) != 0
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            let value = rng.next_u64() >> 11; // keep 53 bits
            value as f64 * (1.0 / ((1u64 << 53) as f64))
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            let value = rng.next_u32() >> 8; // keep 24 bits
            value as f32 * (1.0 / ((1u32 << 24) as f32))
        }
    }

    pub mod uniform {
        use crate::RngCore;
        use std::ops::{Range, RangeInclusive};

        /// Word-level helpers for the widening-multiply uniform sampler.
        pub trait UniformWord: Copy {
            fn gen_word<R: RngCore + ?Sized>(rng: &mut R) -> Self;
            /// Widening multiply: returns `(high, low)` words of `self * b`.
            fn wmul(self, b: Self) -> (Self, Self);
        }

        impl UniformWord for u32 {
            fn gen_word<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
                rng.next_u32()
            }
            fn wmul(self, b: u32) -> (u32, u32) {
                let t = self as u64 * b as u64;
                ((t >> 32) as u32, t as u32)
            }
        }

        impl UniformWord for u64 {
            fn gen_word<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
                rng.next_u64()
            }
            fn wmul(self, b: u64) -> (u64, u64) {
                let t = self as u128 * b as u128;
                ((t >> 64) as u64, t as u64)
            }
        }

        /// A type that `Rng::gen_range` can sample uniformly.
        pub trait SampleUniform: Sized + PartialOrd {
            /// Uniform sample from `[low, high]`.
            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
            /// Uniform sample from `[low, high)`.
            fn sample_exclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        }

        macro_rules! uniform_int_impl {
            ($($ty:ty, $unsigned:ty, $u_large:ty);*) => {$(
                impl SampleUniform for $ty {
                    fn sample_inclusive<R: RngCore + ?Sized>(
                        low: $ty,
                        high: $ty,
                        rng: &mut R,
                    ) -> $ty {
                        assert!(low <= high, "gen_range: low > high");
                        let range = (high as $unsigned)
                            .wrapping_sub(low as $unsigned)
                            .wrapping_add(1) as $u_large;
                        // Zero range means the whole type domain.
                        if range == 0 {
                            return <$u_large as UniformWord>::gen_word(rng) as $ty;
                        }
                        // rand 0.8 sample_single_inclusive: small (<= 16-bit)
                        // types compute the exact modulus zone, larger types
                        // use the leading-zeros approximation.
                        let zone = if (<$unsigned>::MAX as u64) <= u16::MAX as u64 {
                            let unsigned_max = <$u_large>::MAX;
                            let ints_to_reject = (unsigned_max - range + 1) % range;
                            unsigned_max - ints_to_reject
                        } else {
                            (range << range.leading_zeros()).wrapping_sub(1)
                        };
                        loop {
                            let v = <$u_large as UniformWord>::gen_word(rng);
                            let (hi, lo) = v.wmul(range);
                            if lo <= zone {
                                return low.wrapping_add(hi as $ty);
                            }
                        }
                    }

                    fn sample_exclusive<R: RngCore + ?Sized>(
                        low: $ty,
                        high: $ty,
                        rng: &mut R,
                    ) -> $ty {
                        assert!(low < high, "gen_range: empty range");
                        Self::sample_inclusive(low, high - 1, rng)
                    }
                }
            )*};
        }

        uniform_int_impl!(
            u8, u8, u32;
            u16, u16, u32;
            u32, u32, u32;
            u64, u64, u64;
            usize, usize, u64;
            i8, u8, u32;
            i16, u16, u32;
            i32, u32, u32;
            i64, u64, u64;
            isize, usize, u64
        );

        macro_rules! uniform_float_impl {
            ($($ty:ty, $uint:ty, $word:ident, $bits:expr);*) => {$(
                impl SampleUniform for $ty {
                    fn sample_inclusive<R: RngCore + ?Sized>(
                        low: $ty,
                        high: $ty,
                        rng: &mut R,
                    ) -> $ty {
                        // Floats treat inclusive and exclusive alike
                        // (matching rand's closed-open scaling).
                        assert!(low <= high, "gen_range: low > high");
                        let scale = high - low;
                        loop {
                            let value = rng.$word() >> (<$uint>::BITS - $bits);
                            let unit = value as $ty
                                * (1.0 / ((1u64 << $bits) as $ty));
                            let res = unit * scale + low;
                            if res <= high {
                                return res;
                            }
                        }
                    }

                    fn sample_exclusive<R: RngCore + ?Sized>(
                        low: $ty,
                        high: $ty,
                        rng: &mut R,
                    ) -> $ty {
                        assert!(low < high, "gen_range: empty range");
                        let scale = high - low;
                        loop {
                            let value = rng.$word() >> (<$uint>::BITS - $bits);
                            let unit = value as $ty
                                * (1.0 / ((1u64 << $bits) as $ty));
                            let res = unit * scale + low;
                            if res < high {
                                return res;
                            }
                        }
                    }
                }
            )*};
        }

        uniform_float_impl!(f64, u64, next_u64, 53; f32, u32, next_u32, 24);

        /// Range argument accepted by `Rng::gen_range`.
        pub trait SampleRange<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        impl<T: SampleUniform> SampleRange<T> for Range<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                T::sample_exclusive(self.start, self.end, rng)
            }
        }

        impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
                let (low, high) = self.into_inner();
                T::sample_inclusive(low, high, rng)
            }
        }
    }
}

use distributions::uniform::{SampleRange, SampleUniform};
use distributions::{Distribution, Standard};

/// User-facing convenience methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
        Self: Sized,
    {
        Standard.sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli by 64-bit integer comparison, as in rand 0.8.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        if p == 1.0 {
            return true;
        }
        let p_int = (p * 2.0 * (1u64 << 63) as f64) as u64;
        self.gen::<u64>() < p_int
    }

    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// rand 0.8's 64-bit `SmallRng`: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            // The lowest bits have linear dependencies; use the upper bits.
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            // An all-zero state would be a fixed point; reseed like the
            // upstream xoshiro crate does.
            if seed.iter().all(|&b| b == 0) {
                return Self::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            SmallRng { s }
        }
    }
}

pub mod seq {
    use crate::distributions::uniform::SampleUniform;
    use crate::RngCore;

    /// Random operations on slices (the subset the workspace uses).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Reverse Fisher–Yates, identical draw sequence to rand 0.8.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, usize::sample_inclusive(0, i, rng));
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = usize::sample_exclusive(0, self.len(), rng);
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    /// Reference vectors from the xoshiro256++ reference implementation with
    /// state seeded to (1, 2, 3, 4) — pins the generator algorithm.
    #[test]
    fn xoshiro256plusplus_reference_vectors() {
        let mut seed = [0u8; 32];
        seed[0] = 1;
        seed[8] = 2;
        seed[16] = 3;
        seed[24] = 4;
        let mut rng = SmallRng::from_seed(seed);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for &want in &expected {
            assert_eq!(rng.next_u64(), want);
        }
    }

    /// `seed_from_u64` must match rand_core 0.6's PCG32 expansion: two
    /// generators seeded the same way agree, different seeds disagree.
    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = SmallRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}
