//! Offline stand-in for the `rayon` crate.
//!
//! The workspace uses exactly one shape: `.par_iter()` / `.into_par_iter()`
//! followed by `.map(f).collect()`. This stub reproduces it on top of
//! `std::thread::scope` with a dynamic work queue (atomic index), preserving
//! input order in the collected output. Worker threads are capped at the
//! machine's available parallelism.
//!
//! Determinism note: per-item work must itself be deterministic (it is — the
//! figure sweeps seed every run explicitly); the stub only parallelizes,
//! order of results is restored by index before collecting.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// How many worker threads a parallel collect may use. Honors the
/// `RAYON_NUM_THREADS` environment variable (like real Rayon's default
/// global pool) so thread counts are controllable in tests and CI;
/// falls back to the machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
}

pub struct ParIter<T> {
    items: Vec<T>,
}

pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        F: Fn(T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let ParMap { items, f } = self;
        let n = items.len();
        let threads = current_num_threads().min(n);
        if threads <= 1 {
            return items.into_iter().map(f).collect();
        }

        let f = &f;
        let slots: Vec<Mutex<Option<T>>> =
            items.into_iter().map(|x| Mutex::new(Some(x))).collect();
        let next = AtomicUsize::new(0);
        let done = Mutex::new(Vec::with_capacity(n));

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i].lock().unwrap().take().unwrap();
                    let result = f(item);
                    done.lock().unwrap().push((i, result));
                });
            }
        });

        let mut pairs = done.into_inner().unwrap();
        pairs.sort_unstable_by_key(|&(i, _)| i);
        pairs.into_iter().map(|(_, r)| r).collect()
    }
}

pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

pub trait IntoParallelRefIterator<'a> {
    type Item: Send;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
    <&'a C as IntoIterator>::Item: Send,
{
    type Item = <&'a C as IntoIterator>::Item;
    fn par_iter(&'a self) -> ParIter<Self::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());

        let squared: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squared, (0u64..100).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = Vec::<u32>::new().par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
