//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's bench targets use —
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box` — with
//! a deliberately simple measurement loop: a short warmup followed by a
//! fixed number of timed iterations, reporting the median as ns/iter on
//! stdout. No statistics, plots, or baselines; the serious bench trajectory
//! lives in the repo's own BENCH JSON tooling (`vitis-bench`,
//! `vitis-experiments scale`).

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const SAMPLES: usize = 7;

/// Runs one closure per timed sample and remembers the elapsed time.
pub struct Bencher {
    samples_ns: Vec<u128>,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples_ns: Vec::with_capacity(SAMPLES),
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        self.samples_ns.clear();
        for _ in 0..SAMPLES {
            let start = Instant::now();
            black_box(f());
            self.samples_ns.push(start.elapsed().as_nanos());
        }
    }

    fn median_ns(&mut self) -> u128 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        self.samples_ns.sort_unstable();
        self.samples_ns[self.samples_ns.len() / 2]
    }
}

fn run_bench(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new();
    f(&mut b);
    println!("bench {label}: median {} ns/iter", b.median_ns());
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkLabel {
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.id
    }
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, label: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&label.into_label(), &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, label: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            &format!("{}/{}", self.name, label.into_label()),
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        label: impl IntoBenchmarkLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut g = |b: &mut Bencher| f(b, input);
        run_bench(&format!("{}/{}", self.name, label.into_label()), &mut g);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
