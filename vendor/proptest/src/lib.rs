//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(...)]`, `pat in strategy`
//! and `name: Type` parameters), range / tuple / `any` / `collection::vec`
//! / `option::of` strategies, and the `prop_assert*` / `prop_assume!`
//! macros. Each test runs a fixed number of cases with an RNG seeded from
//! the test's module path and case index, so failures are reproducible.
//!
//! Deliberately *not* implemented: shrinking (a failing case reports its
//! case index and message only) and persistence of failure seeds.

pub mod test_runner {
    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default (256) is overkill for CI; 64 keeps the
            // deterministic sweep fast while still exploring the space.
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the runner moves on.
        Reject(String),
        /// A `prop_assert*` failed; the runner panics with this message.
        Fail(String),
    }

    /// SplitMix64 over a seed derived from (test path, case index).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_case(test_path: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in test_path.as_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53-bit precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        // Whole-domain u64/i64 inclusive range.
                        return rng.next_u64() as $ty;
                    }
                    (lo as i128 + rng.below(span) as i128) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.next_f64() as $ty;
                    self.start + unit * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    );
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, wide magnitude spread.
            (rng.next_f64() - 0.5) * 2e12
        }
    }

    pub struct Any<T>(PhantomData<T>);

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for `vec`: inclusive low, inclusive high.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.sample(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The test-definition macro. Supports an optional
/// `#![proptest_config(expr)]` header and any mix of `pat in strategy` and
/// `name: Type` parameters (the latter uses `any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                #[allow(unused_mut)]
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let __result: ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $crate::__proptest_body!(__rng, ($($params)*) $body)
                })();
                match __result {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => continue,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => panic!("proptest case {} of {}: {}", __case, __cfg.cases, msg),
                }
            }
        }
    )*};
}

/// Binds each parameter (sampling from its strategy) then runs the body,
/// which must evaluate inside a closure returning
/// `Result<(), TestCaseError>`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($rng:ident, () $body:block) => {{
        $body
        ::core::result::Result::Ok(())
    }};
    ($rng:ident, ($pat:pat in $strat:expr $(, $($rest:tt)*)?) $body:block) => {{
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_body!($rng, ($($($rest)*)?) $body)
    }};
    ($rng:ident, ($name:ident : $ty:ty $(, $($rest:tt)*)?) $body:block) => {{
        let $name: $ty = $crate::strategy::Strategy::sample(
            &$crate::arbitrary::any::<$ty>(),
            &mut $rng,
        );
        $crate::__proptest_body!($rng, ($($($rest)*)?) $body)
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __l, __r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{}\n  both: {:?}",
            format!($($fmt)+), __l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Reject(
                    concat!("assumption failed: ", stringify!($cond)).to_string(),
                ),
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn range_strategies_in_bounds(x in 10u64..20, y in -5i32..5, f in -1.5f64..2.5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((-1.5..2.5).contains(&f));
        }

        #[test]
        fn typed_params_and_assume(v: u64, w: bool) {
            prop_assume!(v != 0);
            prop_assert_ne!(v, 0);
            let _ = w;
        }

        #[test]
        fn vec_and_option(xs in crate::collection::vec(0u32..50, 1..10),
                          o in crate::option::of(0u32..3)) {
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            prop_assert!(xs.iter().all(|&x| x < 50));
            if let Some(v) = o {
                prop_assert!(v < 3);
            }
        }

        #[test]
        fn tuple_strategies(t in (0u32..4, 1u64..9, 0u16..2)) {
            prop_assert!(t.0 < 4 && (1..9).contains(&t.1) && t.2 < 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_header_accepted(x in 0u8..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::for_case("mod::t", 3);
        let mut b = crate::test_runner::TestRng::for_case("mod::t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
