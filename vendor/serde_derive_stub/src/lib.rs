//! No-op derive macros backing the offline `serde` stub.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (no code calls
//! serialization), so the derives expand to nothing. Declaring
//! `attributes(serde)` keeps the `#[serde(...)]` helper attributes inert.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
