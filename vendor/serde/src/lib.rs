//! Offline stand-in for the `serde` crate.
//!
//! The workspace uses serde only for `#[derive(Serialize, Deserialize)]`
//! annotations (forward-looking schema markers — nothing serializes yet), so
//! this stub re-exports no-op derives plus empty marker traits under the
//! same names. The derive macro and the trait live in different namespaces,
//! exactly like real serde, so `use serde::{Serialize, Deserialize}` imports
//! both.

pub use serde_derive_stub::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}
