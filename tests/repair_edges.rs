//! Failure edges of the anti-entropy repair layer at system level:
//! advertisers that crash or freeze mid-pull, duplicate recoveries racing
//! the flood, and repair across an active partition. The cache-expiry
//! edge (a pull answered after its entry aged out) is covered at unit
//! level in `vitis_sim::antientropy` (`cache_ages_out_...`).

use vitis::monitor::LossReason;
use vitis::prelude::*;
use vitis::system::NetworkSpec;
use vitis_sim::antientropy::AeConfig;
use vitis_sim::fault::{FaultEpisode, FaultPlan, Span};
use vitis_workloads::{Correlation, SubscriptionModel};

fn lossy_repair_params(seed: u64) -> SystemParams {
    let model = SubscriptionModel {
        num_nodes: 150,
        num_topics: 20,
        num_buckets: 4,
        subs_per_node: 5,
        correlation: Correlation::Low,
    };
    let subs: Vec<TopicSet> = model
        .generate(seed)
        .into_iter()
        .map(TopicSet::from_iter)
        .collect();
    let mut params = SystemParams::new(subs, model.num_topics);
    params.seed = seed;
    params.repair = AeConfig::on();
    params
}

fn conservation(sys: &dyn PubSub, label: &str) {
    let report = sys.loss_report();
    let total: u64 = report.by_reason.iter().map(|(_, c)| c).sum();
    assert_eq!(
        total,
        report.expected - report.delivered,
        "{label}: loss reasons must exactly cover the misses"
    );
}

/// Digests and pulls aimed at peers that crash or freeze mid-exchange:
/// the engine silently drops sends to dead nodes and parks a frozen
/// node's inbox, so outstanding pulls must drain through the retry cap
/// (rotating to other advertisers or exhausting their budget) rather
/// than hanging forever. After the dust settles, no alive node may hold
/// a pending pull, and loss attribution must still balance exactly.
#[test]
fn pulls_drain_when_advertisers_crash_or_freeze() {
    let mut params = lossy_repair_params(11);
    // Force real gaps so pulls actually happen.
    params.network = NetworkSpec::LossyConstant(1, 0.35);
    // Freeze a few nodes over the dissemination + repair window; their
    // queued digests/pulls thaw late or never pay off.
    let period = params.round_period.ticks();
    params.faults = FaultPlan::new(vec![FaultEpisode::Freeze {
        nodes: vec![5, 6, 7, 8],
        span: Span::new(40 * period, 46 * period),
    }])
    .expect("valid fault plan");
    let mut sys = VitisSystem::new(params);
    sys.run_rounds(40);
    sys.reset_metrics();
    for t in 0..20u32 {
        sys.publish(TopicId(t));
    }
    // Let floods, digests and first pulls go out, then crash a block of
    // nodes — some of them are advertisers with pulls aimed at them.
    sys.run_rounds(2);
    for logical in 100..125 {
        sys.set_online(logical, false);
    }
    sys.run_rounds(40);
    let stuck: Vec<u32> = sys
        .engine()
        .alive_nodes()
        .filter(|(_, n)| n.repair().pending() > 0)
        .map(|(i, _)| i.0)
        .collect();
    assert!(
        stuck.is_empty(),
        "pulls must drain (satisfied or exhausted), still pending at {stuck:?}"
    );
    conservation(&sys, "crash/freeze");
}

/// Duplicate recovery of an already-delivered event is idempotent. On a
/// lossy network, repair pushes race late flood copies; the monitor's
/// first-arrival semantics mean `delivered` can never exceed `expected`,
/// duplicates (either order) change nothing, and the recovered tally
/// counts only first arrivals. Against a repair-off run at the same
/// seed, repair must strictly add deliveries, never distort accounting.
#[test]
fn duplicate_recoveries_are_idempotent() {
    let run = |repair: bool| {
        let mut params = lossy_repair_params(23);
        // Vitis's flood redundancy rides out moderate loss on its own
        // (at 30% it still delivers 100% given enough rounds); 60% over
        // a short window leaves real gaps for repair to close.
        params.network = NetworkSpec::LossyConstant(1, 0.6);
        if !repair {
            params.repair = AeConfig::default();
        }
        let mut sys = VitisSystem::new(params);
        sys.run_rounds(40);
        sys.reset_metrics();
        for t in 0..20u32 {
            sys.publish(TopicId(t));
        }
        sys.run_rounds(12);
        conservation(&sys, if repair { "repair-on" } else { "repair-off" });
        let s = sys.stats();
        assert!(
            s.delivered <= s.expected,
            "first-arrival dedup bound violated: {} > {}",
            s.delivered,
            s.expected
        );
        (s, sys.recovered_deliveries())
    };
    let (off, off_rec) = run(false);
    let (on, on_rec) = run(true);
    assert_eq!(off_rec, 0, "repair-off run must recover nothing");
    assert!(on_rec > 0, "0.3 loss must leave gaps for repair to close");
    assert!(
        on.delivered > off.delivered,
        "repair must add deliveries ({} vs {})",
        on.delivered,
        off.delivered
    );
    assert!(
        on_rec <= on.delivered,
        "recovered tally counts first arrivals only"
    );
}

/// Repair never leaks across an active partition. Topic 0 is subscribed
/// only inside the isolated group; a publish from the majority side while
/// the partition holds must deliver to nobody — the flood and every
/// digest/pull/push crossing the boundary is dropped. After heal, the
/// flood is long dead (bounded TTL), so every delivery that closes the
/// gap is a repair recovery pulled from majority-side caches.
#[test]
fn repair_does_not_cross_an_active_partition() {
    const N: usize = 120;
    const TOPICS: usize = 8;
    let isolated: Vec<u32> = (90..110).collect();
    let subs: Vec<TopicSet> = (0..N as u32)
        .map(|i| {
            if isolated.contains(&i) {
                TopicSet::from_iter([0u32])
            } else {
                // Majority nodes spread over topics 1..8; topic 0 stays
                // exclusive to the isolated group.
                TopicSet::from_iter((0..4).map(|k| 1 + (i * 4 + k) % (TOPICS as u32 - 1)))
            }
        })
        .collect();
    let mut params = SystemParams::new(subs, TOPICS);
    params.seed = 31;
    params.repair = AeConfig::on();
    let period = params.round_period.ticks();
    params.faults = FaultPlan::new(vec![FaultEpisode::Partition {
        groups: vec![isolated.clone()],
        span: Span::new(40 * period, 52 * period),
    }])
    .expect("valid fault plan");
    let mut sys = VitisSystem::new(params);
    sys.run_rounds(40);
    sys.reset_metrics();
    let event = sys.publish_from(0, TopicId(0));
    assert!(event.is_some(), "publisher 0 is alive");
    sys.run_rounds(10); // still partitioned until round 52
    let mid = sys.stats();
    assert_eq!(mid.expected, isolated.len() as u64);
    assert_eq!(
        mid.delivered, 0,
        "no copy — flood or repair — may cross the active partition"
    );
    assert_eq!(sys.recovered_deliveries(), 0);
    // Heal, then give the digest gossip time to reach the formerly
    // isolated subscribers (well inside the 30-round cache TTL).
    sys.run_rounds(20);
    let end = sys.stats();
    assert!(
        end.delivered > 0,
        "post-heal repair must recover at least one isolated subscriber"
    );
    assert_eq!(
        end.delivered,
        sys.recovered_deliveries(),
        "the flood died during the partition — every delivery is a recovery"
    );
    let network = sys
        .loss_report()
        .by_reason
        .iter()
        .find(|(r, _)| *r == LossReason::Network)
        .map_or(0, |&(_, c)| c);
    assert!(
        network < isolated.len() as u64,
        "recoveries must shrink the Network-attributed gap"
    );
    conservation(&sys, "partition");
}
