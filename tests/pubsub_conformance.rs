//! Instantiates the shared [`vitis::conformance`] suite for all three
//! systems: one contract, three implementations driven through the same
//! generic runtime — any divergence in driver semantics fails here with
//! the system's name in the message.

use rand::Rng;
use vitis::conformance::check_pubsub_conformance;
use vitis::system::{SystemParams, VitisSystem};
use vitis::topic::TopicSet;
use vitis_baselines::{OptSystem, RvrSystem};
use vitis_sim::rng::{domain, stream_rng};

const NODES: usize = 120;
const TOPICS: u32 = 10;
const CHURN_NODES: u32 = 12;

fn params(seed: u64) -> SystemParams {
    let mut rng = stream_rng(seed, domain::WORKLOAD, 1);
    let subscriptions: Vec<TopicSet> = (0..NODES)
        .map(|_| TopicSet::from_iter((0..4).map(|_| rng.gen_range(0..TOPICS))))
        .collect();
    let mut p = SystemParams::new(subscriptions, TOPICS as usize);
    p.seed = seed;
    p
}

#[test]
fn vitis_conforms_to_pubsub_contract() {
    let mut sys = VitisSystem::new(params(61));
    check_pubsub_conformance(&mut sys, "vitis", TOPICS, CHURN_NODES);
}

#[test]
fn rvr_conforms_to_pubsub_contract() {
    let mut sys = RvrSystem::new(params(61));
    check_pubsub_conformance(&mut sys, "rvr", TOPICS, CHURN_NODES);
}

#[test]
fn opt_conforms_to_pubsub_contract() {
    let mut sys = OptSystem::new(params(61));
    check_pubsub_conformance(&mut sys, "opt", TOPICS, CHURN_NODES);
}
