//! Fixed-seed determinism goldens for all three systems.
//!
//! Each system runs a short fixed-seed scenario (warmup, a publish batch,
//! churn while disseminating, recovery) and renders everything
//! deterministic it produced — every [`vitis::monitor::PubSubStats`]
//! field bit-exact, the loss report, the health probe, and a fingerprint
//! of the forensics trace JSONL — into one canonical snapshot string
//! compared byte-for-byte against the checked-in files under
//! `tests/golden/`.
//!
//! The snapshots pin two properties at once:
//!
//! * **refactor safety** — the `SystemRuntime` extraction (PR 4) must not
//!   change a single bit of any run, and
//! * **iteration-order bugs** — the HashMap-order class of
//!   nondeterminism fixed in PR 3 cannot silently come back.
//!
//! The same snapshots double as the parallel-executor oracle: the
//! `parallel_determinism` suite re-runs these scenarios through
//! `SystemRuntime::set_parallel_rounds(true)` against the *same* files.
//!
//! Wall-clock fields (the phase timers of the experiment metrics sink)
//! are inherently non-reproducible and are the only records excluded.
//!
//! Regenerate after an *intentional* behavior change with:
//! `UPDATE_GOLDEN=1 cargo test --test determinism_golden`.

mod common;

use common::{
    check_golden, faulted_params, golden_params, repair_params, run_repair_scenario, run_scenario,
};
use vitis::system::VitisSystem;
use vitis_baselines::{OptSystem, RvrSystem};

#[test]
fn vitis_fixed_seed_run_is_bit_identical() {
    let mut sys = VitisSystem::new(golden_params());
    check_golden("vitis", &run_scenario(&mut sys));
}

#[test]
fn rvr_fixed_seed_run_is_bit_identical() {
    let mut sys = RvrSystem::new(golden_params());
    check_golden("rvr", &run_scenario(&mut sys));
}

#[test]
fn opt_fixed_seed_run_is_bit_identical() {
    let mut sys = OptSystem::new(golden_params());
    check_golden("opt", &run_scenario(&mut sys));
}

/// Perf instrumentation must be invisible to the simulation: running the
/// same scenario with the span profiler enabled (and under the
/// `perf-alloc` counting allocator, when built with that feature) yields
/// the same bytes as the checked-in golden. Wall-clock observation never
/// feeds simulation state.
#[test]
fn vitis_golden_is_byte_identical_with_profiling_on() {
    vitis_sim::perf::set_enabled(true);
    let mut sys = VitisSystem::new(golden_params());
    let got = run_scenario(&mut sys);
    vitis_sim::perf::set_enabled(false);
    check_golden("vitis", &got);
    // The profiler actually observed the run it did not perturb.
    let spans = vitis_sim::perf::take_spans();
    assert!(
        spans
            .iter()
            .any(|(p, s)| p.ends_with("engine.run_until") && s.count > 0),
        "enabled profiler must record engine spans"
    );
}

/// The faulted counterpart: the same scenario under a fixed fault plan
/// exercising every episode kind, with the Vitis hardening knobs on
/// (publisher retries, bounded TTL, gateway failover). Pins the entire
/// fault-injection path — the time-aware network wrapper, the engine-side
/// fault driver, net-drop tracing, and `LossReason::Network` attribution —
/// to a bit-exact snapshot.
#[test]
fn vitis_faulted_fixed_seed_run_is_bit_identical() {
    let mut sys = VitisSystem::new(faulted_params());
    check_golden("vitis_faulted", &run_scenario(&mut sys));
}

/// The faulted scenario with the anti-entropy repair layer on: digest
/// gossip, pull scheduling with backoff, recovery pushes and their
/// `recovered=true` delivery accounting are all deterministic. Compared
/// against its own snapshot (repair changes outcomes by design); the
/// repair-off goldens above staying byte-identical is what proves the
/// disabled layer is inert.
#[test]
fn vitis_repair_fixed_seed_run_is_bit_identical() {
    let mut sys = VitisSystem::new(repair_params());
    let got = run_repair_scenario(&mut sys);
    assert!(
        got.contains("kind ae_digest"),
        "repair-enabled run must send digests"
    );
    check_golden("vitis_repair", &got);
}
