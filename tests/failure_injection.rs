//! Targeted failure injection: kill exactly the nodes the structure leans
//! on (rendezvous, gateways) and verify the soft state heals; plus gossip
//! cost bounds.

use vitis::monitor::LossReason;
use vitis::prelude::*;
use vitis::system::NetworkSpec;
use vitis_baselines::{OptSystem, RvrSystem};
use vitis_sim::event::NodeIdx;
use vitis_workloads::{Correlation, SubscriptionModel};

fn system(n: usize, seed: u64) -> VitisSystem {
    let model = SubscriptionModel {
        num_nodes: n,
        num_topics: n / 2,
        num_buckets: (n / 100).max(4),
        subs_per_node: 20,
        correlation: Correlation::Low,
    };
    let subs: Vec<TopicSet> = model
        .generate(seed)
        .into_iter()
        .map(TopicSet::from_iter)
        .collect();
    let mut params = SystemParams::new(subs, model.num_topics);
    params.seed = seed;
    let mut sys = VitisSystem::new(params);
    sys.run_rounds(55);
    sys
}

fn rendezvous_of(sys: &VitisSystem, topic: TopicId) -> Vec<u32> {
    sys.engine()
        .alive_nodes()
        .filter(|(_, n)| {
            n.relay_table()
                .get(topic)
                .is_some_and(|e| e.is_rendezvous())
        })
        .map(|(i, _)| i.0)
        .collect()
}

/// Crash the rendezvous node of a topic: the next lookups elect a new one
/// and delivery recovers to full.
#[test]
fn rendezvous_crash_heals() {
    let mut sys = system(300, 5);
    // Find a topic with an established rendezvous.
    let mut target = None;
    for t in 0..sys.workload().num_topics() as u32 {
        let r = rendezvous_of(&sys, TopicId(t));
        if r.len() == 1 {
            target = Some((TopicId(t), r[0]));
            break;
        }
    }
    let (topic, rdv) = target.expect("some topic has an established rendezvous");
    sys.set_online(rdv, false);
    sys.run_rounds(12); // detect + re-elect + rebuild relay paths
    let new_rdv = rendezvous_of(&sys, topic);
    assert!(
        !new_rdv.contains(&rdv),
        "dead node still believed to be rendezvous"
    );
    sys.reset_metrics();
    sys.publish(topic);
    sys.run_rounds(6);
    let s = sys.stats();
    assert!(s.expected > 0);
    assert_eq!(
        s.delivered, s.expected,
        "delivery must fully recover after the rendezvous crash"
    );
}

/// Crash every gateway of a topic at once: remaining subscribers re-elect
/// within the gossip radius and delivery recovers.
#[test]
fn gateway_mass_crash_heals() {
    let mut sys = system(300, 7);
    let topic = TopicId(0);
    let gws: Vec<u32> = sys
        .engine()
        .alive_nodes()
        .filter(|(_, n)| n.is_gateway(topic))
        .map(|(i, _)| i.0)
        .collect();
    assert!(!gws.is_empty(), "topic 0 has no gateways after warmup");
    for g in &gws {
        sys.set_online(*g, false);
    }
    sys.run_rounds(12);
    let new_gws = sys
        .engine()
        .alive_nodes()
        .filter(|(_, n)| n.is_gateway(topic))
        .count();
    assert!(new_gws >= 1, "no new gateways elected");
    sys.reset_metrics();
    sys.publish(topic);
    sys.run_rounds(6);
    let s = sys.stats();
    assert!(
        s.hit_ratio > 0.99,
        "hit after gateway crash {}",
        s.hit_ratio
    );
}

/// Control traffic per node per round is bounded: the engine's message
/// counters grow linearly with rounds, not with rounds², and the per-node
/// rate is a small constant multiple of the table size.
#[test]
fn gossip_message_rate_is_bounded() {
    let mut sys = system(200, 9);
    let stats0 = sys.engine().stats();
    let rounds = 20u64;
    sys.run_rounds(rounds);
    let stats1 = sys.engine().stats();
    let msgs = stats1.messages_sent - stats0.messages_sent;
    let per_node_per_round = msgs as f64 / (200.0 * rounds as f64);
    // Per round a node sends: 1 PS exchange (+1 reply), 1 RT exchange
    // (+1 reply), ≤15 heartbeats, a few relay refreshes. Far below 40.
    assert!(
        per_node_per_round < 40.0,
        "control message rate {per_node_per_round:.1}/node/round"
    );
    assert!(per_node_per_round > 5.0, "suspiciously quiet gossip");
}

/// In-transit drops of a lossy network surface as `LossReason::Network`
/// in loss attribution, for all three systems, and the per-reason counts
/// still account for every missed delivery exactly (the invariant the
/// `analyze` exact-sum check relies on).
#[test]
fn lossy_network_misses_attribute_to_network() {
    let model = SubscriptionModel {
        num_nodes: 150,
        num_topics: 20,
        num_buckets: 4,
        subs_per_node: 5,
        correlation: Correlation::Low,
    };
    let subs: Vec<TopicSet> = model
        .generate(3)
        .into_iter()
        .map(TopicSet::from_iter)
        .collect();
    let mut params = SystemParams::new(subs, model.num_topics);
    params.seed = 3;
    params.network = NetworkSpec::LossyConstant(1, 0.25);
    let mut systems: Vec<(&str, Box<dyn PubSub>)> = vec![
        ("vitis", Box::new(VitisSystem::new(params.clone()))),
        ("rvr", Box::new(RvrSystem::new(params.clone()))),
        ("opt", Box::new(OptSystem::new(params))),
    ];
    for (name, sys) in &mut systems {
        sys.run_rounds(40);
        sys.reset_metrics();
        for t in 0..model.num_topics as u32 {
            sys.publish(TopicId(t));
        }
        sys.run_rounds(3);
        let s = sys.stats();
        let report = sys.loss_report();
        assert!(s.expected > 0, "{name}: no expected deliveries");
        assert!(
            s.delivered < s.expected,
            "{name}: a 25% lossy network must cause misses"
        );
        let network = report
            .by_reason
            .iter()
            .find(|(r, _)| *r == LossReason::Network)
            .map_or(0, |(_, c)| *c);
        assert!(
            network > 0,
            "{name}: no miss attributed to the network ({:?})",
            report.by_reason
        );
        let total: u64 = report.by_reason.iter().map(|(_, c)| c).sum();
        assert_eq!(
            total,
            report.expected - report.delivered,
            "{name}: loss reasons must exactly cover the misses"
        );
    }
}

/// Half the network crashes at once and the survivors re-converge to a
/// consistent ring within a bounded number of rounds.
#[test]
fn ring_reconverges_after_mass_crash() {
    let mut sys = system(300, 13);
    for logical in 0..150 {
        sys.set_online(logical, false);
    }
    sys.run_rounds(25);
    assert_eq!(sys.alive_count(), 150);
    assert!(
        sys.ring_accuracy() > 0.97,
        "ring accuracy after losing half the network: {}",
        sys.ring_accuracy()
    );
    let _ = NodeIdx(0);
}
