//! Lookup-consistency invariants over live overlay snapshots: with a
//! converged ring, every node's greedy lookup for a topic must land on the
//! same rendezvous node — the property that guarantees all clusters of a
//! topic are stitched together (Section III-B: "all the lookups end up at
//! the rendezvous node; the lookup consistency is ensured by the ring").

use vitis::prelude::*;
use vitis_overlay::id::Id;
use vitis_overlay::routing::greedy_walk;
use vitis_sim::event::NodeIdx;
use vitis_workloads::{Correlation, SubscriptionModel};

fn converged_system(n: usize, seed: u64) -> VitisSystem {
    let model = SubscriptionModel {
        num_nodes: n,
        num_topics: n / 2,
        num_buckets: (n / 100).max(4),
        subs_per_node: 20,
        correlation: Correlation::Low,
    };
    let subs: Vec<TopicSet> = model
        .generate(seed)
        .into_iter()
        .map(TopicSet::from_iter)
        .collect();
    let mut params = SystemParams::new(subs, model.num_topics);
    params.seed = seed;
    let mut sys = VitisSystem::new(params);
    sys.run_rounds(60);
    sys
}

/// Snapshot every node's routing candidates and greedy-walk from many
/// sources toward several topics: all walks for a topic must terminate at
/// one node, and that node must be the globally ring-closest to `hash(t)`.
#[test]
fn all_lookups_agree_on_the_rendezvous() {
    let sys = converged_system(300, 3);
    let engine = sys.engine();
    assert!(sys.ring_accuracy() > 0.99, "ring not converged");

    let id_of = |x: NodeIdx| engine.node(x).expect("alive").ring_id();
    let neighbors_of = |x: NodeIdx| -> Vec<(Id, NodeIdx)> {
        engine
            .node(x)
            .expect("alive")
            .routing_table()
            .route_candidates()
            .into_iter()
            .filter(|(_, a)| engine.is_alive(*a))
            .collect()
    };
    let all_ids: Vec<Id> = engine.alive_nodes().map(|(_, n)| n.ring_id()).collect();

    let sources: Vec<NodeIdx> = engine.alive_indices().into_iter().step_by(17).collect();
    for t in (0..sys.workload().num_topics() as u32).step_by(13) {
        let target = TopicId(t).ring_id();
        let truly_closest = {
            let i = vitis_overlay::id::closest_to(target, &all_ids).expect("nonempty");
            all_ids[i]
        };
        let mut terminals = std::collections::BTreeSet::new();
        for &src in &sources {
            let walk = greedy_walk(src, target, 5_000, id_of, neighbors_of)
                .expect("greedy walk must terminate");
            terminals.insert(walk.rendezvous());
        }
        assert_eq!(
            terminals.len(),
            1,
            "topic {t}: lookups split across {terminals:?}"
        );
        let rdv = *terminals.iter().next().expect("checked non-empty");
        assert_eq!(
            id_of(rdv),
            truly_closest,
            "topic {t}: rendezvous is not the ring-closest node"
        );
    }
}

/// The relay soft state agrees with the walks: for a sampled topic, exactly
/// the nodes claiming the rendezvous role are the walks' terminals.
#[test]
fn relay_state_matches_lookup_terminals() {
    let sys = converged_system(250, 11);
    let engine = sys.engine();
    let mut checked = 0;
    for t in (0..sys.workload().num_topics() as u32).step_by(11) {
        let topic = TopicId(t);
        let claimants: Vec<NodeIdx> = engine
            .alive_nodes()
            .filter(|(_, n)| {
                n.relay_table()
                    .get(topic)
                    .is_some_and(|e| e.is_rendezvous())
            })
            .map(|(i, _)| i)
            .collect();
        // Topics whose relay structure is currently established must have
        // exactly one rendezvous claimant on a converged ring.
        if !claimants.is_empty() {
            checked += 1;
            assert_eq!(
                claimants.len(),
                1,
                "topic {t}: multiple rendezvous claimants {claimants:?}"
            );
        }
    }
    assert!(checked > 3, "too few topics with active relay state");
}
