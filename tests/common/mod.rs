//! Shared fixed-seed golden scenario, used by both the serial
//! (`determinism_golden`) and parallel (`parallel_determinism`) suites —
//! the two must compare against the *same* checked-in snapshots, byte for
//! byte, or the parallel executor is not deterministic.

#![allow(dead_code)] // each test binary uses a subset of this module

use rand::Rng;
use std::fmt::Write as _;
use vitis::monitor::PubSubStats;
use vitis::system::{PubSub, SystemParams};
use vitis::topic::{TopicId, TopicSet};
use vitis_sim::antientropy::AeConfig;
use vitis_sim::fault::{FaultEpisode, FaultPlan, LossScope, Span};
use vitis_sim::rng::{domain, stream_rng};
use vitis_sim::time::SimTime;
use vitis_sim::trace::Trace;

pub const NODES: usize = 100;
pub const TOPICS: usize = 12;
pub const SUBS_PER_NODE: usize = 4;
pub const SEED: u64 = 2024;

pub fn golden_params() -> SystemParams {
    let mut rng = stream_rng(SEED, domain::WORKLOAD, 1);
    let subscriptions: Vec<TopicSet> = (0..NODES)
        .map(|_| TopicSet::from_iter((0..SUBS_PER_NODE).map(|_| rng.gen_range(0..TOPICS as u32))))
        .collect();
    let mut p = SystemParams::new(subscriptions, TOPICS);
    p.seed = SEED;
    p
}

/// [`golden_params`] plus a fixed [`FaultPlan`] exercising every episode
/// kind, with the Vitis hardening knobs on (publisher retries, bounded
/// TTL, gateway failover).
pub fn faulted_params() -> SystemParams {
    let mut p = golden_params();
    let period = p.round_period.ticks();
    p.faults = FaultPlan::new(vec![
        FaultEpisode::LatencySpike {
            factor: 4.0,
            span: Span::new(8 * period, 12 * period),
        },
        FaultEpisode::LossBurst {
            prob: 0.3,
            span: Span::new(20 * period, 23 * period),
            scope: LossScope::All,
        },
        FaultEpisode::Partition {
            groups: vec![(50..70).collect()],
            span: Span::new(21 * period, 24 * period),
        },
        FaultEpisode::Freeze {
            nodes: vec![30, 31, 32],
            span: Span::new(22 * period, 25 * period),
        },
        FaultEpisode::CorrelatedCrash {
            nodes: vec![40, 41],
            at: SimTime(22 * period),
        },
    ])
    .expect("golden fault plan is valid");
    p.cfg.publish_retries = 2;
    p.cfg.publish_ack_timeout = 64;
    p.cfg.max_event_hops = 32;
    p.cfg.gateway_failover = true;
    p
}

/// [`faulted_params`] with the anti-entropy repair layer switched on:
/// the same fault gauntlet, but nodes now gossip digests of their recent
/// events and pull what the faults cost them. Drives the `vitis_repair`
/// golden, which pins the whole repair path — digest cadence, pull
/// retries/backoff, recovery delivery accounting, and the `ae_*` ledger
/// kinds — to a bit-exact snapshot in both serial and parallel execution.
pub fn repair_params() -> SystemParams {
    let mut p = faulted_params();
    p.repair = AeConfig::on();
    p
}

/// [`run_scenario`] plus the cumulative recovered-delivery count, so the
/// repair golden pins recoveries explicitly rather than only through the
/// trace fingerprint.
pub fn run_repair_scenario(sys: &mut dyn PubSub) -> String {
    let mut out = run_scenario(sys);
    writeln!(out, "recovered_deliveries={}", sys.recovered_deliveries()).unwrap();
    out
}

/// Bit-exact float rendering: decimal (for human diffs) plus raw bits.
fn f(out: &mut String, name: &str, v: f64) {
    writeln!(out, "{name}={v:?} bits={:#018x}", v.to_bits()).unwrap();
}

fn render_stats(out: &mut String, s: &PubSubStats) {
    writeln!(out, "published={}", s.published).unwrap();
    writeln!(out, "expected={}", s.expected).unwrap();
    writeln!(out, "delivered={}", s.delivered).unwrap();
    f(out, "hit_ratio", s.hit_ratio);
    f(out, "mean_hops", s.mean_hops);
    writeln!(out, "max_hops={}", s.max_hops).unwrap();
    writeln!(out, "useful_msgs={}", s.useful_msgs).unwrap();
    writeln!(out, "relay_msgs={}", s.relay_msgs).unwrap();
    f(out, "overhead_pct", s.overhead_pct);
    f(out, "mean_latency_ticks", s.mean_latency_ticks);
    writeln!(out, "max_latency_ticks={}", s.max_latency_ticks).unwrap();
    f(out, "control_bytes_per_round", s.control_bytes_per_round);
    writeln!(out, "control_sent={}", s.control_sent).unwrap();
    writeln!(out, "data_sent={}", s.data_sent).unwrap();
    for k in &s.traffic_by_kind {
        writeln!(
            out,
            "kind {} {:?} sent={} delivered={}",
            k.kind, k.class, k.sent, k.delivered
        )
        .unwrap();
    }
}

/// FNV-1a over the trace JSONL: a byte-identity fingerprint that keeps the
/// golden files reviewable (the full trace runs to thousands of lines).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub fn run_scenario(sys: &mut dyn PubSub) -> String {
    let trace = Trace::shared(1 << 16);
    // Lifecycle + forensics events only: per-message records would swamp
    // the fingerprint without adding determinism coverage (the per-kind
    // ledger already counts every message).
    trace.borrow_mut().set_record_messages(false);
    sys.install_trace(trace.clone());
    sys.run_rounds(20);
    sys.reset_metrics();
    for t in 0..TOPICS as u32 {
        sys.publish(TopicId(t));
    }
    // Crash a tenth of the network mid-dissemination, then bring it back:
    // exercises set_online incarnation handling and loss classification.
    for logical in 0..10 {
        sys.set_online(logical, false);
    }
    sys.run_rounds(5);
    for logical in 0..10 {
        sys.set_online(logical, true);
    }
    sys.run_rounds(2);

    let stats = sys.stats();
    let report = sys.loss_report();
    let probe = sys.health_probe();

    let mut out = String::new();
    writeln!(out, "now={}", sys.now().0).unwrap();
    writeln!(out, "alive={}", sys.alive_count()).unwrap();
    f(&mut out, "mean_degree", sys.mean_degree());
    render_stats(&mut out, &stats);
    writeln!(
        out,
        "loss expected={} delivered={}",
        report.expected, report.delivered
    )
    .unwrap();
    for (reason, count) in &report.by_reason {
        writeln!(out, "loss {}={count}", reason.as_str()).unwrap();
    }
    let overhead = sys.per_node_overhead(1);
    writeln!(out, "per_node_overhead n={}", overhead.len()).unwrap();
    f(
        &mut out,
        "per_node_overhead_sum",
        overhead.iter().sum::<f64>(),
    );
    writeln!(out, "probe alive={}", probe.alive).unwrap();
    f(&mut out, "probe_mean_degree", probe.mean_degree);
    match probe.ring_accuracy {
        Some(v) => f(&mut out, "probe_ring_accuracy", v),
        None => writeln!(out, "probe_ring_accuracy=None").unwrap(),
    }
    match probe.mean_view_age {
        Some(v) => f(&mut out, "probe_mean_view_age", v),
        None => writeln!(out, "probe_mean_view_age=None").unwrap(),
    }
    writeln!(
        out,
        "probe clusters={:?} largest={:?}",
        probe.clusters, probe.largest_cluster
    )
    .unwrap();
    let jsonl = trace.borrow().to_jsonl();
    writeln!(out, "trace_lines={}", jsonl.lines().count()).unwrap();
    writeln!(out, "trace_fnv1a={:#018x}", fnv1a(jsonl.as_bytes())).unwrap();
    out
}

pub fn check_golden(name: &str, got: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert!(
        got == want,
        "{name} diverged from {}.\nGot:\n{got}\nWant:\n{want}\n\
         If the change is intentional, regenerate with UPDATE_GOLDEN=1.",
        path.display()
    );
}
