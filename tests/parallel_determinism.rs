//! The parallel executor's oracle: the golden scenarios of
//! `determinism_golden`, re-run with rounds routed through the engine's
//! deterministic parallel executor
//! (`SystemRuntime::set_parallel_rounds(true)`), compared byte-for-byte
//! against the **same** checked-in snapshots under `tests/golden/`.
//!
//! Nothing here has its own golden files on purpose: if the parallel path
//! ever diverges from serial execution by a single bit — stats, loss
//! attribution, health probe, or any line of the forensics trace — one of
//! these tests fails against the serial snapshot, naming the system.
//!
//! Thread-count independence is pinned twice: the engine's own
//! differential tests cover it in-process, and CI runs this whole binary
//! under both `RAYON_NUM_THREADS=1` and `RAYON_NUM_THREADS=8` — same
//! files, any thread count.

mod common;

use common::{
    check_golden, faulted_params, golden_params, repair_params, run_repair_scenario, run_scenario,
};
use rand::Rng;
use vitis::conformance::check_pubsub_conformance;
use vitis::system::{SystemParams, VitisSystem};
use vitis::topic::TopicSet;
use vitis_baselines::{OptSystem, RvrSystem};
use vitis_sim::rng::{domain, stream_rng};

#[test]
fn vitis_parallel_run_matches_serial_golden() {
    let mut sys = VitisSystem::new(golden_params());
    sys.set_parallel_rounds(true);
    check_golden("vitis", &run_scenario(&mut sys));
}

#[test]
fn rvr_parallel_run_matches_serial_golden() {
    let mut sys = RvrSystem::new(golden_params());
    sys.set_parallel_rounds(true);
    check_golden("rvr", &run_scenario(&mut sys));
}

#[test]
fn opt_parallel_run_matches_serial_golden() {
    let mut sys = OptSystem::new(golden_params());
    sys.set_parallel_rounds(true);
    check_golden("opt", &run_scenario(&mut sys));
}

/// The fault-injection path under parallel execution: freeze suppression,
/// crash incarnations, partition drops and latency spikes all merge
/// deterministically — same bytes as the serial faulted snapshot.
#[test]
fn vitis_faulted_parallel_run_matches_serial_golden() {
    let mut sys = VitisSystem::new(faulted_params());
    sys.set_parallel_rounds(true);
    check_golden("vitis_faulted", &run_scenario(&mut sys));
}

/// The anti-entropy repair layer under parallel execution: digest target
/// sampling, pull scheduling and recovery-delivery accounting replay
/// identically through the deferred monitor-op pipeline — same bytes as
/// the serial repair snapshot.
#[test]
fn vitis_repair_parallel_run_matches_serial_golden() {
    let mut sys = VitisSystem::new(repair_params());
    sys.set_parallel_rounds(true);
    check_golden("vitis_repair", &run_repair_scenario(&mut sys));
}

/// The full pub/sub driver contract holds with parallel rounds on: all
/// three systems pass the shared conformance suite (publish/deliver,
/// churn, metrics-window semantics) unchanged.
fn conformance_params(seed: u64) -> SystemParams {
    const NODES: usize = 120;
    const TOPICS: u32 = 10;
    let mut rng = stream_rng(seed, domain::WORKLOAD, 1);
    let subscriptions: Vec<TopicSet> = (0..NODES)
        .map(|_| TopicSet::from_iter((0..4).map(|_| rng.gen_range(0..TOPICS))))
        .collect();
    let mut p = SystemParams::new(subscriptions, TOPICS as usize);
    p.seed = seed;
    p
}

#[test]
fn vitis_conforms_with_parallel_rounds() {
    let mut sys = VitisSystem::new(conformance_params(61));
    sys.set_parallel_rounds(true);
    check_pubsub_conformance(&mut sys, "vitis-parallel", 10, 12);
}

#[test]
fn rvr_conforms_with_parallel_rounds() {
    let mut sys = RvrSystem::new(conformance_params(61));
    sys.set_parallel_rounds(true);
    check_pubsub_conformance(&mut sys, "rvr-parallel", 10, 12);
}

#[test]
fn opt_conforms_with_parallel_rounds() {
    let mut sys = OptSystem::new(conformance_params(61));
    sys.set_parallel_rounds(true);
    check_pubsub_conformance(&mut sys, "opt-parallel", 10, 12);
}
