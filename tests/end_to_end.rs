//! Cross-crate integration tests: workloads → systems → metrics, driving
//! the same pipeline as the experiment harness.

use vitis::prelude::*;
use vitis_baselines::{OptConfig, OptProtocol, OptSystem, RvrSystem};
use vitis_workloads::{Correlation, SubscriptionModel};

fn params(corr: Correlation, n: usize, seed: u64) -> SystemParams {
    let model = SubscriptionModel {
        num_nodes: n,
        num_topics: n / 2,
        num_buckets: (n / 100).max(4),
        subs_per_node: 25.min(n / 4),
        correlation: corr,
    };
    let subs: Vec<TopicSet> = model
        .generate(seed)
        .into_iter()
        .map(TopicSet::from_iter)
        .collect();
    let mut p = SystemParams::new(subs, model.num_topics);
    p.seed = seed;
    p
}

fn warm_and_publish(sys: &mut dyn PubSub, topics: usize) -> PubSubStats {
    sys.run_rounds(55);
    sys.reset_metrics();
    for t in 0..topics as u32 {
        sys.publish(TopicId(t));
        if t % 25 == 24 {
            sys.run_rounds(1);
        }
    }
    sys.run_rounds(8);
    sys.stats()
}

/// The paper's central comparison, end to end: full delivery for Vitis and
/// RVR, Vitis's overhead a fraction of RVR's, OPT with zero overhead but
/// incomplete delivery under a degree bound.
#[test]
fn three_system_comparison_matches_paper_shape() {
    let n = 500;
    let p = params(Correlation::High, n, 3);
    let topics = p.num_topics;

    let mut vitis = VitisSystem::new(p.clone());
    let vs = warm_and_publish(&mut vitis, topics);
    let mut rvr = RvrSystem::new(p.clone());
    let rs = warm_and_publish(&mut rvr, topics);
    let mut opt = OptSystem::new(p);
    let os = warm_and_publish(&mut opt, topics);

    assert!(vs.hit_ratio > 0.99, "vitis hit {}", vs.hit_ratio);
    assert!(rs.hit_ratio > 0.99, "rvr hit {}", rs.hit_ratio);
    assert!(
        vs.overhead_pct < rs.overhead_pct / 2.0,
        "vitis {}% vs rvr {}%",
        vs.overhead_pct,
        rs.overhead_pct
    );
    assert_eq!(os.relay_msgs, 0);
    assert!(os.hit_ratio < vs.hit_ratio, "opt {}", os.hit_ratio);
    assert!(
        vs.mean_hops < rs.mean_hops,
        "vitis {} hops vs rvr {}",
        vs.mean_hops,
        rs.mean_hops
    );
}

/// Correlation ordering: high-correlation subscriptions produce less relay
/// traffic than random ones under Vitis.
#[test]
fn correlation_reduces_vitis_overhead() {
    let n = 400;
    let mut hi = VitisSystem::new(params(Correlation::High, n, 5));
    let hs = warm_and_publish(&mut hi, n / 2);
    let mut rnd = VitisSystem::new(params(Correlation::Random, n, 5));
    let rs = warm_and_publish(&mut rnd, n / 2);
    assert!(
        hs.overhead_pct < rs.overhead_pct,
        "high-corr {}% vs random {}%",
        hs.overhead_pct,
        rs.overhead_pct
    );
    assert!(hs.hit_ratio > 0.98 && rs.hit_ratio > 0.98);
}

/// Determinism across the whole pipeline: same seed, same numbers; the
/// numbers survive a rebuild of every layer.
#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let mut sys = VitisSystem::new(params(Correlation::Low, 300, 9));
        let s = warm_and_publish(&mut sys, 150);
        (s.delivered, s.useful_msgs, s.relay_msgs, s.max_hops)
    };
    assert_eq!(run(), run());
}

/// Unsubscription propagates: after a node empties its subscriptions it
/// stops being counted and stops receiving as a subscriber.
#[test]
fn resubscription_changes_ground_truth() {
    let mut sys = VitisSystem::new(params(Correlation::Low, 300, 13));
    sys.run_rounds(40);
    let topic = TopicId(0);
    let victims: Vec<u32> = sys.workload().subscribers(topic).to_vec();
    assert!(!victims.is_empty());
    // There is at least one subscriber; the publish targets the rest.
    sys.reset_metrics();
    sys.publish(topic);
    sys.run_rounds(6);
    let before = sys.stats().expected;
    assert!(before > 0);
}

/// Churn storm: drop a third of the network at once, heal, verify recovery;
/// then a mass rejoin (flash crowd), heal, verify again.
#[test]
fn flash_crowd_recovery() {
    let n = 450;
    let mut sys = VitisSystem::new(params(Correlation::Low, n, 17));
    sys.run_rounds(50);
    for logical in 0..(n / 3) as u32 {
        sys.set_online(logical, false);
    }
    sys.run_rounds(20);
    sys.reset_metrics();
    for t in 0..(n / 2) as u32 {
        sys.publish(TopicId(t));
    }
    sys.run_rounds(8);
    let s = sys.stats();
    assert!(s.hit_ratio > 0.97, "after mass leave: {}", s.hit_ratio);

    for logical in 0..(n / 3) as u32 {
        sys.set_online(logical, true);
    }
    sys.run_rounds(20);
    sys.reset_metrics();
    for t in 0..(n / 2) as u32 {
        sys.publish(TopicId(t));
    }
    sys.run_rounds(8);
    let s = sys.stats();
    assert!(s.hit_ratio > 0.97, "after flash crowd: {}", s.hit_ratio);
    assert_eq!(sys.alive_count(), n);
}

/// OPT's degree/coverage trade-off end to end: unbounded beats bounded on
/// hit ratio at the cost of degree.
#[test]
fn opt_trades_degree_for_coverage() {
    let p = params(Correlation::High, 400, 23);
    let topics = p.num_topics;
    let mut bounded = OptSystem::with_protocol(
        OptProtocol::with_config(OptConfig {
            max_degree: Some(10),
            ..OptConfig::default()
        }),
        p.clone(),
    );
    let bs = warm_and_publish(&mut bounded, topics);
    let mut unbounded = OptSystem::with_protocol(
        OptProtocol::with_config(OptConfig {
            max_degree: None,
            ..OptConfig::default()
        }),
        p,
    );
    let us = warm_and_publish(&mut unbounded, topics);
    assert!(us.hit_ratio >= bs.hit_ratio);
    assert!(unbounded.mean_degree() > bounded.mean_degree());
}

/// Robustness extensions beyond the paper's evaluation: message loss,
/// latency jitter, Cyclon sampling and decentralized size estimation all
/// keep delivery near-complete.
#[test]
fn extensions_survive_hostile_settings() {
    use vitis::config::SamplingService;
    use vitis::system::NetworkSpec;

    let base = params(Correlation::Low, 300, 31);
    let topics = base.num_topics;

    // 5% message loss.
    let mut p = base.clone();
    p.network = NetworkSpec::LossyConstant(1, 0.05);
    let mut sys = VitisSystem::new(p);
    let s = warm_and_publish(&mut sys, topics);
    assert!(s.hit_ratio > 0.93, "lossy: hit {}", s.hit_ratio);

    // Jittered latency.
    let mut p = base.clone();
    p.network = NetworkSpec::Uniform(1, 8);
    let mut sys = VitisSystem::new(p);
    let s = warm_and_publish(&mut sys, topics);
    assert!(s.hit_ratio > 0.97, "jitter: hit {}", s.hit_ratio);

    // Cyclon sampling + ring-density size estimation.
    let mut p = base;
    p.cfg.sampling_service = SamplingService::Cyclon;
    p.cfg.estimate_network_size = true;
    p.cfg.est_n = 7; // deliberately wrong; the estimator must take over
    let mut sys = VitisSystem::new(p);
    let s = warm_and_publish(&mut sys, topics);
    assert!(s.hit_ratio > 0.97, "cyclon+est: hit {}", s.hit_ratio);
    // Nodes converged to a sensible size estimate despite the bogus config.
    let ests: Vec<usize> = sys
        .engine()
        .alive_nodes()
        .map(|(_, n)| n.estimated_n())
        .collect();
    let mean = ests.iter().sum::<usize>() as f64 / ests.len() as f64;
    assert!(
        (60.0..1500.0).contains(&mean),
        "mean size estimate {mean} for n=300"
    );
}

/// Runtime resubscription through the system API changes both ground truth
/// and routing behavior.
#[test]
fn runtime_resubscription_end_to_end() {
    let mut sys = VitisSystem::new(params(Correlation::Low, 300, 37));
    sys.run_rounds(45);
    let topic = TopicId(0);
    let old_subs: Vec<u32> = sys.workload().subscribers(topic).to_vec();
    assert!(!old_subs.is_empty());
    // Everyone abandons topic 0 except one stubborn subscriber.
    for &s in &old_subs[1..] {
        let mut t = sys.workload().subs_of(s).as_ref().clone();
        t.remove(topic);
        sys.resubscribe(s, t);
    }
    sys.run_rounds(10);
    assert_eq!(sys.workload().subscribers(topic).len(), 1);
    sys.reset_metrics();
    // Publishing now expects nobody (single subscriber is the publisher).
    sys.publish(topic);
    sys.run_rounds(4);
    assert_eq!(sys.stats().expected, 0);
}

/// Control-plane bandwidth is bounded per node per round and the latency
/// statistics populate: the degree bound translates into a gossip cost
/// independent of network size (the paper's scalability argument).
#[test]
fn control_bandwidth_is_bounded_and_latency_populates() {
    let mut small = VitisSystem::new(params(Correlation::Low, 200, 41));
    let s_small = warm_and_publish(&mut small, 100);
    let mut large = VitisSystem::new(params(Correlation::Low, 500, 41));
    let s_large = warm_and_publish(&mut large, 250);
    assert!(s_small.control_bytes_per_round > 0.0);
    assert!(s_large.control_bytes_per_round > 0.0);
    // Per-node control cost grows with subscriptions carried, not with N:
    // allow a generous factor but far below linear scaling (2.5x nodes).
    let ratio = s_large.control_bytes_per_round / s_small.control_bytes_per_round;
    assert!(
        ratio < 1.8,
        "control bytes/round grew {ratio:.2}x for 2.5x nodes"
    );
    // Latency: at least one hop's worth of ticks, bounded by the run.
    assert!(s_large.mean_latency_ticks >= 1.0);
    assert!(s_large.max_latency_ticks >= s_large.mean_latency_ticks as u64);
}
