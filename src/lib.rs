//! # vitis-suite
//!
//! Umbrella crate of the Vitis reproduction (IPDPS 2011): re-exports every
//! layer of the stack so examples and integration tests can reach the
//! whole API through one dependency.
//!
//! * [`vitis`] — the Vitis protocol and system API (start here).
//! * [`vitis_baselines`] — the RVR and OPT comparison systems.
//! * [`vitis_overlay`] — the gossip overlay substrate.
//! * [`vitis_sim`] — the deterministic discrete-event engine.
//! * [`vitis_workloads`] — subscription/rate/trace generators.
//! * [`vitis_experiments`] — the per-figure experiment harness.
//!
//! See `README.md` for the project tour, `DESIGN.md` for the system
//! inventory and reproduction notes, and `EXPERIMENTS.md` for
//! paper-vs-measured results.

#![warn(missing_docs)]

pub use vitis;
pub use vitis_baselines;
pub use vitis_experiments;
pub use vitis_overlay;
pub use vitis_sim;
pub use vitis_workloads;
